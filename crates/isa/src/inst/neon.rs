//! ASIMD (Neon) instructions used by the traditional vector microkernels.

use super::InstClass;
use crate::regs::{VReg, XReg};
use crate::types::NeonArrangement;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ASIMD instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NeonInst {
    /// `fmla vd.<T>, vn.<T>, vm.<T>` — vector fused multiply-add.
    ///
    /// The paper's Lst. 1 peak-throughput kernel consists of 30 independent
    /// instances of this instruction.
    FmlaVec {
        /// Accumulator / destination register.
        vd: VReg,
        /// First source register.
        vn: VReg,
        /// Second source register.
        vm: VReg,
        /// Lane arrangement (`4s`, `2d`, `8h`).
        arrangement: NeonArrangement,
    },
    /// `fmla vd.<T>, vn.<T>, vm.<Ts>[index]` — fused multiply-add by element.
    ///
    /// The Fig. 6 Neon microkernel broadcasts one element of B per
    /// instruction through this form.
    FmlaElem {
        /// Accumulator / destination register.
        vd: VReg,
        /// Vector source register.
        vn: VReg,
        /// Element source register.
        vm: VReg,
        /// Lane index within `vm`.
        index: u8,
        /// Lane arrangement of the destination.
        arrangement: NeonArrangement,
    },
    /// `bfmmla vd.4s, vn.8h, vm.8h` — BF16 matrix multiply-accumulate
    /// (2×4 by 4×2 into 2×2 FP32), the Table I Neon matrix instruction.
    Bfmmla {
        /// Accumulator / destination register (FP32 2×2).
        vd: VReg,
        /// First source register (BF16 2×4).
        vn: VReg,
        /// Second source register (BF16 4×2).
        vm: VReg,
    },
    /// `ldr q<t>, [xn, #imm]` — 128-bit load with unsigned scaled offset.
    LdrQ {
        /// Destination register.
        vt: VReg,
        /// Base address register.
        rn: XReg,
        /// Byte offset (must be a multiple of 16, 0–65520).
        imm: u32,
    },
    /// `ldr d<t>, [xn, #imm]` — 64-bit SIMD&FP load (zeroes the upper
    /// half). Used by the BFMMLA widening kernel to move 2-element column
    /// fragments of a column-major C.
    LdrD {
        /// Destination register (low 64 bits written, high 64 bits zeroed).
        vt: VReg,
        /// Base address register.
        rn: XReg,
        /// Byte offset (must be a multiple of 8, 0–32760).
        imm: u32,
    },
    /// `str d<t>, [xn, #imm]` — 64-bit SIMD&FP store (low half).
    StrD {
        /// Source register (low 64 bits stored).
        vt: VReg,
        /// Base address register.
        rn: XReg,
        /// Byte offset (must be a multiple of 8, 0–32760).
        imm: u32,
    },
    /// `ldr s<t>, [xn, #imm]` — 32-bit SIMD&FP load (zeroes the upper
    /// 96 bits). Moves single-lane row/column fragments so the Neon
    /// generators can cover odd matrix extents.
    LdrS {
        /// Destination register (low 32 bits written, rest zeroed).
        vt: VReg,
        /// Base address register.
        rn: XReg,
        /// Byte offset (must be a multiple of 4, 0–16380).
        imm: u32,
    },
    /// `str s<t>, [xn, #imm]` — 32-bit SIMD&FP store (lane 0).
    StrS {
        /// Source register (low 32 bits stored).
        vt: VReg,
        /// Base address register.
        rn: XReg,
        /// Byte offset (must be a multiple of 4, 0–16380).
        imm: u32,
    },
    /// `ins vd.d[dst], vn.d[src]` — move one 64-bit element between vector
    /// registers (the D-lane form only; pairs with [`NeonInst::LdrD`] /
    /// [`NeonInst::StrD`] to assemble and split BFMMLA accumulators).
    InsElemD {
        /// Destination register.
        vd: VReg,
        /// Source register.
        vn: VReg,
        /// Destination D-lane index (0 or 1).
        dst: u8,
        /// Source D-lane index (0 or 1).
        src: u8,
    },
    /// `str q<t>, [xn, #imm]` — 128-bit store with unsigned scaled offset.
    StrQ {
        /// Source register.
        vt: VReg,
        /// Base address register.
        rn: XReg,
        /// Byte offset (must be a multiple of 16, 0–65520).
        imm: u32,
    },
    /// `ldp q<t1>, q<t2>, [xn, #imm]` — load pair of 128-bit registers.
    LdpQ {
        /// First destination register.
        vt1: VReg,
        /// Second destination register.
        vt2: VReg,
        /// Base address register.
        rn: XReg,
        /// Signed byte offset (multiple of 16, −1024..=1008).
        imm: i32,
    },
    /// `stp q<t1>, q<t2>, [xn, #imm]` — store pair of 128-bit registers.
    StpQ {
        /// First source register.
        vt1: VReg,
        /// Second source register.
        vt2: VReg,
        /// Base address register.
        rn: XReg,
        /// Signed byte offset (multiple of 16, −1024..=1008).
        imm: i32,
    },
    /// `dup vd.<T>, vn.<Ts>[index]` — broadcast one lane to all lanes.
    DupElem {
        /// Destination register.
        vd: VReg,
        /// Source register.
        vn: VReg,
        /// Lane index.
        index: u8,
        /// Destination arrangement.
        arrangement: NeonArrangement,
    },
    /// `movi vd.<T>, #0` — zero a vector register (modelled immediate-zero
    /// form only, used to clear Neon accumulators).
    MoviZero {
        /// Destination register.
        vd: VReg,
        /// Destination arrangement.
        arrangement: NeonArrangement,
    },
}

impl NeonInst {
    /// Convenience constructor for `fmla` (vector).
    pub fn fmla_vec(vd: VReg, vn: VReg, vm: VReg, arrangement: NeonArrangement) -> Self {
        NeonInst::FmlaVec {
            vd,
            vn,
            vm,
            arrangement,
        }
    }

    /// Convenience constructor for `fmla` (by element).
    pub fn fmla_elem(
        vd: VReg,
        vn: VReg,
        vm: VReg,
        index: u8,
        arrangement: NeonArrangement,
    ) -> Self {
        NeonInst::FmlaElem {
            vd,
            vn,
            vm,
            index,
            arrangement,
        }
    }

    /// Execution class for the timing model.
    pub fn class(&self) -> InstClass {
        match self {
            NeonInst::LdrQ { .. }
            | NeonInst::StrQ { .. }
            | NeonInst::LdpQ { .. }
            | NeonInst::StpQ { .. }
            | NeonInst::LdrD { .. }
            | NeonInst::StrD { .. }
            | NeonInst::LdrS { .. }
            | NeonInst::StrS { .. } => InstClass::NeonMem,
            _ => InstClass::NeonFp,
        }
    }

    /// Arithmetic operations performed by one execution.
    ///
    /// A 128-bit FMLA performs one multiply and one add per lane; BFMMLA
    /// performs a 2×4×2 matrix multiply-accumulate = 32 operations.
    pub fn arith_ops(&self) -> u64 {
        match self {
            NeonInst::FmlaVec { arrangement, .. } | NeonInst::FmlaElem { arrangement, .. } => {
                2 * arrangement.lanes() as u64
            }
            NeonInst::Bfmmla { .. } => 32,
            _ => 0,
        }
    }

    /// Bytes moved to or from memory by one execution.
    pub fn mem_bytes(&self) -> u64 {
        match self {
            NeonInst::LdrQ { .. } | NeonInst::StrQ { .. } => 16,
            NeonInst::LdpQ { .. } | NeonInst::StpQ { .. } => 32,
            NeonInst::LdrD { .. } | NeonInst::StrD { .. } => 8,
            NeonInst::LdrS { .. } | NeonInst::StrS { .. } => 4,
            _ => 0,
        }
    }

    /// `true` if this instruction writes to memory (rather than reading).
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            NeonInst::StrQ { .. }
                | NeonInst::StpQ { .. }
                | NeonInst::StrD { .. }
                | NeonInst::StrS { .. }
        )
    }
}

impl fmt::Display for NeonInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeonInst::FmlaVec {
                vd,
                vn,
                vm,
                arrangement,
            } => {
                write!(
                    f,
                    "fmla {vd}.{arrangement}, {vn}.{arrangement}, {vm}.{arrangement}"
                )
            }
            NeonInst::FmlaElem {
                vd,
                vn,
                vm,
                index,
                arrangement,
            } => {
                let lane = match arrangement {
                    NeonArrangement::D2 => "d",
                    NeonArrangement::S4 => "s",
                    NeonArrangement::H8 => "h",
                    NeonArrangement::B16 => "b",
                };
                write!(
                    f,
                    "fmla {vd}.{arrangement}, {vn}.{arrangement}, {vm}.{lane}[{index}]"
                )
            }
            NeonInst::Bfmmla { vd, vn, vm } => write!(f, "bfmmla {vd}.4s, {vn}.8h, {vm}.8h"),
            NeonInst::LdrQ { vt, rn, imm } => write!(f, "ldr q{}, [{rn}, #{imm}]", vt.index()),
            NeonInst::StrQ { vt, rn, imm } => write!(f, "str q{}, [{rn}, #{imm}]", vt.index()),
            NeonInst::LdrD { vt, rn, imm } => write!(f, "ldr d{}, [{rn}, #{imm}]", vt.index()),
            NeonInst::StrD { vt, rn, imm } => write!(f, "str d{}, [{rn}, #{imm}]", vt.index()),
            NeonInst::LdrS { vt, rn, imm } => write!(f, "ldr s{}, [{rn}, #{imm}]", vt.index()),
            NeonInst::StrS { vt, rn, imm } => write!(f, "str s{}, [{rn}, #{imm}]", vt.index()),
            NeonInst::InsElemD { vd, vn, dst, src } => {
                write!(f, "ins {vd}.d[{dst}], {vn}.d[{src}]")
            }
            NeonInst::LdpQ { vt1, vt2, rn, imm } => {
                write!(f, "ldp q{}, q{}, [{rn}, #{imm}]", vt1.index(), vt2.index())
            }
            NeonInst::StpQ { vt1, vt2, rn, imm } => {
                write!(f, "stp q{}, q{}, [{rn}, #{imm}]", vt1.index(), vt2.index())
            }
            NeonInst::DupElem {
                vd,
                vn,
                index,
                arrangement,
            } => {
                let lane = match arrangement {
                    NeonArrangement::D2 => "d",
                    NeonArrangement::S4 => "s",
                    NeonArrangement::H8 => "h",
                    NeonArrangement::B16 => "b",
                };
                write!(f, "dup {vd}.{arrangement}, {vn}.{lane}[{index}]")
            }
            NeonInst::MoviZero { vd, arrangement } => write!(f, "movi {vd}.{arrangement}, #0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::short::*;

    #[test]
    fn fmla_ops_per_arrangement() {
        // Table I context: FP32 FMLA = 8 ops, FP64 = 4, FP16 = 16.
        assert_eq!(
            NeonInst::fmla_vec(v(0), v(1), v(2), NeonArrangement::S4).arith_ops(),
            8
        );
        assert_eq!(
            NeonInst::fmla_vec(v(0), v(1), v(2), NeonArrangement::D2).arith_ops(),
            4
        );
        assert_eq!(
            NeonInst::fmla_vec(v(0), v(1), v(2), NeonArrangement::H8).arith_ops(),
            16
        );
        assert_eq!(
            NeonInst::Bfmmla {
                vd: v(0),
                vn: v(1),
                vm: v(2)
            }
            .arith_ops(),
            32
        );
    }

    #[test]
    fn memory_bytes() {
        assert_eq!(
            NeonInst::LdrQ {
                vt: v(0),
                rn: x(0),
                imm: 0
            }
            .mem_bytes(),
            16
        );
        assert_eq!(
            NeonInst::LdpQ {
                vt1: v(0),
                vt2: v(1),
                rn: x(0),
                imm: 32
            }
            .mem_bytes(),
            32
        );
        assert!(NeonInst::StpQ {
            vt1: v(0),
            vt2: v(1),
            rn: x(0),
            imm: 0
        }
        .is_store());
        assert!(!NeonInst::LdrQ {
            vt: v(0),
            rn: x(0),
            imm: 0
        }
        .is_store());
    }

    #[test]
    fn classes() {
        assert_eq!(
            NeonInst::fmla_vec(v(1), v(30), v(31), NeonArrangement::S4).class(),
            InstClass::NeonFp
        );
        assert_eq!(
            NeonInst::LdrQ {
                vt: v(0),
                rn: x(1),
                imm: 16
            }
            .class(),
            InstClass::NeonMem
        );
    }

    #[test]
    fn display() {
        assert_eq!(
            NeonInst::fmla_vec(v(1), v(30), v(31), NeonArrangement::S4).to_string(),
            "fmla v1.4s, v30.4s, v31.4s"
        );
        assert_eq!(
            NeonInst::fmla_elem(v(4), v(28), v(29), 1, NeonArrangement::S4).to_string(),
            "fmla v4.4s, v28.4s, v29.s[1]"
        );
        assert_eq!(
            NeonInst::LdpQ {
                vt1: v(0),
                vt2: v(1),
                rn: x(0),
                imm: 32
            }
            .to_string(),
            "ldp q0, q1, [x0, #32]"
        );
        assert_eq!(
            NeonInst::MoviZero {
                vd: v(9),
                arrangement: NeonArrangement::S4
            }
            .to_string(),
            "movi v9.4s, #0"
        );
    }
}
