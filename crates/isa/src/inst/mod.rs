//! Typed instruction representation.
//!
//! Every instruction that the microbenchmarks and the GEMM generator emit is
//! a variant of [`Inst`], grouped into four classes mirroring the ISA
//! extensions involved:
//!
//! * [`ScalarInst`] — A64 base instructions (control flow, address
//!   arithmetic, immediate moves);
//! * [`NeonInst`] — ASIMD instructions used by the traditional vector
//!   microkernels (Lst. 1 and the Fig. 6 Neon microkernel);
//! * [`SveInst`] — SVE / Streaming SVE instructions (predicate setup,
//!   contiguous and multi-vector loads and stores, streaming FMLA);
//! * [`SmeInst`] — SME / SME2 instructions (outer products, ZA moves, ZA
//!   array loads/stores, multi-vector FMLA, mode control).

pub mod neon;
pub mod scalar;
pub mod sme;
pub mod sve;

pub use neon::NeonInst;
pub use scalar::ScalarInst;
pub use sme::SmeInst;
pub use sve::SveInst;

use crate::types::StreamingVectorLength;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single AArch64 instruction in the modelled subset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// A64 base instruction.
    Scalar(ScalarInst),
    /// ASIMD (Neon) instruction.
    Neon(NeonInst),
    /// SVE / Streaming SVE instruction.
    Sve(SveInst),
    /// SME / SME2 instruction.
    Sme(SmeInst),
}

/// Broad execution class of an instruction, used by the timing model to map
/// instructions onto execution resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstClass {
    /// Branches and compare-and-branch.
    Branch,
    /// Integer ALU work (address arithmetic, immediate moves, compares).
    IntAlu,
    /// Neon floating-point/integer data processing.
    NeonFp,
    /// Neon loads and stores.
    NeonMem,
    /// SVE / SSVE data processing on Z registers.
    SveFp,
    /// SVE predicate manipulation.
    SvePred,
    /// SVE loads and stores (Z registers).
    SveMem,
    /// SME outer-product and ZA data processing (executes on the SME unit).
    SmeCompute,
    /// Moves between Z registers and ZA tiles / array vectors.
    SmeMove,
    /// Loads and stores that target the ZA array directly.
    SmeMem,
    /// SMSTART/SMSTOP and other mode control.
    SmeControl,
}

impl Inst {
    /// The execution class of this instruction.
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Scalar(i) => i.class(),
            Inst::Neon(i) => i.class(),
            Inst::Sve(i) => i.class(),
            Inst::Sme(i) => i.class(),
        }
    }

    /// Number of arithmetic operations (FLOPs for floating-point types,
    /// integer multiply-adds counted as two ops) performed by one execution
    /// of this instruction at streaming vector length `svl`.
    ///
    /// These are the per-instruction work figures the paper quotes, e.g. 512
    /// FP32 operations for one FMOPA on M4 and 8 for a 128-bit Neon FMLA.
    pub fn arith_ops(&self, svl: StreamingVectorLength) -> u64 {
        match self {
            Inst::Scalar(_) => 0,
            Inst::Neon(i) => i.arith_ops(),
            Inst::Sve(i) => i.arith_ops(svl),
            Inst::Sme(i) => i.arith_ops(svl),
        }
    }

    /// Number of bytes moved to or from memory by one execution of this
    /// instruction (zero for non-memory instructions).
    pub fn mem_bytes(&self, svl: StreamingVectorLength) -> u64 {
        match self {
            Inst::Scalar(i) => i.mem_bytes(),
            Inst::Neon(i) => i.mem_bytes(),
            Inst::Sve(i) => i.mem_bytes(svl),
            Inst::Sme(i) => i.mem_bytes(svl),
        }
    }

    /// `true` if the instruction may redirect control flow.
    pub fn is_branch(&self) -> bool {
        matches!(self.class(), InstClass::Branch)
    }

    /// `true` if the instruction reads from or writes to memory.
    pub fn is_memory(&self) -> bool {
        matches!(
            self.class(),
            InstClass::NeonMem | InstClass::SveMem | InstClass::SmeMem
        )
    }

    /// `true` if the instruction executes on the shared SME unit.
    pub fn uses_sme_unit(&self) -> bool {
        matches!(
            self.class(),
            InstClass::SmeCompute | InstClass::SmeMove | InstClass::SmeMem
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Scalar(i) => i.fmt(f),
            Inst::Neon(i) => i.fmt(f),
            Inst::Sve(i) => i.fmt(f),
            Inst::Sme(i) => i.fmt(f),
        }
    }
}

impl From<ScalarInst> for Inst {
    fn from(i: ScalarInst) -> Self {
        Inst::Scalar(i)
    }
}

impl From<NeonInst> for Inst {
    fn from(i: NeonInst) -> Self {
        Inst::Neon(i)
    }
}

impl From<SveInst> for Inst {
    fn from(i: SveInst) -> Self {
        Inst::Sve(i)
    }
}

impl From<SmeInst> for Inst {
    fn from(i: SmeInst) -> Self {
        Inst::Sme(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::short::*;
    use crate::types::{ElementType, NeonArrangement};

    #[test]
    fn class_dispatch() {
        let svl = StreamingVectorLength::M4;
        let fmla: Inst = NeonInst::fmla_vec(v(0), v(30), v(31), NeonArrangement::S4).into();
        assert_eq!(fmla.class(), InstClass::NeonFp);
        assert_eq!(fmla.arith_ops(svl), 8);
        assert!(!fmla.is_branch());
        assert!(!fmla.uses_sme_unit());

        let fmopa: Inst = SmeInst::fmopa_f32(0, p(0), p(1), z(0), z(1)).into();
        assert_eq!(fmopa.class(), InstClass::SmeCompute);
        assert_eq!(fmopa.arith_ops(svl), 512);
        assert!(fmopa.uses_sme_unit());

        let ret: Inst = ScalarInst::Ret.into();
        assert_eq!(ret.class(), InstClass::Branch);
        assert!(ret.is_branch());
        assert_eq!(ret.arith_ops(svl), 0);
    }

    #[test]
    fn memory_classification() {
        let svl = StreamingVectorLength::M4;
        let ld: Inst = SveInst::ld1w_multi(z(0), 4, pn(8), x(0), 0).into();
        assert!(ld.is_memory());
        assert_eq!(ld.mem_bytes(svl), 256);
        let fmopa: Inst = SmeInst::fmopa_f32(0, p(0), p(1), z(0), z(1)).into();
        assert!(!fmopa.is_memory());
        assert_eq!(fmopa.mem_bytes(svl), 0);
    }

    #[test]
    fn conversions_from_each_class() {
        let _: Inst = ScalarInst::Ret.into();
        let _: Inst = NeonInst::fmla_vec(v(1), v(2), v(3), NeonArrangement::D2).into();
        let _: Inst = SveInst::ptrue(p(0), ElementType::I8).into();
        let _: Inst = SmeInst::Smstart { za_only: false }.into();
    }
}
