//! SVE / Streaming SVE instructions: predicate setup, contiguous and
//! multi-vector loads and stores, and streaming-mode data processing.

use super::InstClass;
use crate::regs::{PReg, PnReg, XReg, ZReg};
use crate::types::{ElementType, StreamingVectorLength};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An SVE / Streaming SVE instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SveInst {
    /// `ptrue pd.<T>` — set all predicate elements to true (pattern ALL).
    Ptrue {
        /// Destination predicate.
        pd: PReg,
        /// Element size governing the predicate layout.
        elem: ElementType,
    },
    /// `ptrue pn<d>.<T>` — predicate-as-counter form used to govern
    /// multi-vector loads/stores (SME2).
    PtrueCnt {
        /// Destination predicate-as-counter register.
        pn: PnReg,
        /// Element size.
        elem: ElementType,
    },
    /// `whilelt pd.<T>, xn, xm` — construct a partial predicate covering
    /// `max(0, xm - xn)` elements; used to mask remainder columns/rows.
    Whilelt {
        /// Destination predicate.
        pd: PReg,
        /// Element size.
        elem: ElementType,
        /// Start index register.
        rn: XReg,
        /// Limit register.
        rm: XReg,
    },
    /// `whilelt pn<d>.<T>, xn, xm, vlx<N>` — predicate-as-counter form
    /// covering a group of 2 or 4 vectors.
    WhileltCnt {
        /// Destination predicate-as-counter register.
        pn: PnReg,
        /// Element size.
        elem: ElementType,
        /// Start index register.
        rn: XReg,
        /// Limit register.
        rm: XReg,
        /// Vector-group width (2 or 4).
        vl: u8,
    },
    /// `ld1<T> { zt.<T> }, pg/z, [xn, #imm, mul vl]` — predicated contiguous
    /// load of one scalable vector.
    Ld1 {
        /// Destination vector register.
        zt: ZReg,
        /// Element size.
        elem: ElementType,
        /// Governing predicate (zeroing).
        pg: PReg,
        /// Base address register.
        rn: XReg,
        /// Signed offset in multiples of the vector length (−8..=7).
        imm_vl: i8,
    },
    /// `st1<T> { zt.<T> }, pg, [xn, #imm, mul vl]` — predicated contiguous
    /// store of one scalable vector.
    St1 {
        /// Source vector register.
        zt: ZReg,
        /// Element size.
        elem: ElementType,
        /// Governing predicate.
        pg: PReg,
        /// Base address register.
        rn: XReg,
        /// Signed offset in multiples of the vector length (−8..=7).
        imm_vl: i8,
    },
    /// `ld1<T> { zt.<T>-zt+N-1.<T> }, png/z, [xn, #imm, mul vl]` —
    /// multi-vector contiguous load governed by a predicate-as-counter
    /// (the two-step ZA load strategy's first step, Lst. 3 line 1).
    Ld1Multi {
        /// First destination register of the consecutive list.
        zt: ZReg,
        /// Number of registers (2 or 4).
        count: u8,
        /// Element size.
        elem: ElementType,
        /// Governing predicate-as-counter.
        pn: PnReg,
        /// Base address register.
        rn: XReg,
        /// Signed offset in multiples of `count * VL`.
        imm_vl: i8,
    },
    /// `st1<T> { zt..zt+N-1 }, png, [xn, #imm, mul vl]` — multi-vector
    /// contiguous store.
    St1Multi {
        /// First source register of the consecutive list.
        zt: ZReg,
        /// Number of registers (2 or 4).
        count: u8,
        /// Element size.
        elem: ElementType,
        /// Governing predicate-as-counter.
        pn: PnReg,
        /// Base address register.
        rn: XReg,
        /// Signed offset in multiples of `count * VL`.
        imm_vl: i8,
    },
    /// `ldr zt, [xn, #imm, mul vl]` — unpredicated full-vector load.
    LdrZ {
        /// Destination vector register.
        zt: ZReg,
        /// Base address register.
        rn: XReg,
        /// Signed offset in multiples of the vector length.
        imm_vl: i16,
    },
    /// `str zt, [xn, #imm, mul vl]` — unpredicated full-vector store.
    StrZ {
        /// Source vector register.
        zt: ZReg,
        /// Base address register.
        rn: XReg,
        /// Signed offset in multiples of the vector length.
        imm_vl: i16,
    },
    /// `fmla zd.<T>, pg/m, zn.<T>, zm.<T>` — predicated streaming-SVE fused
    /// multiply-add (the slow single-vector baseline in Table I).
    FmlaSve {
        /// Accumulator / destination register.
        zd: ZReg,
        /// Governing predicate (merging).
        pg: PReg,
        /// First source.
        zn: ZReg,
        /// Second source.
        zm: ZReg,
        /// Element type (F32 or F64 in the paper's benchmarks).
        elem: ElementType,
    },
    /// `dup zd.<T>, #imm` — broadcast a signed immediate to all elements
    /// (used with `#0` to clear vector registers).
    DupImm {
        /// Destination register.
        zd: ZReg,
        /// Element size.
        elem: ElementType,
        /// Signed 8-bit immediate.
        imm: i8,
    },
    /// `addvl xd, xn, #imm` — add a multiple of the vector length in bytes
    /// to a general-purpose register.
    AddVl {
        /// Destination register.
        rd: XReg,
        /// Source register.
        rn: XReg,
        /// Multiplier (−32..=31).
        imm: i8,
    },
}

impl SveInst {
    /// Convenience constructor: `ptrue pd.<T>`.
    pub fn ptrue(pd: PReg, elem: ElementType) -> Self {
        SveInst::Ptrue { pd, elem }
    }

    /// Convenience constructor: `ptrue pn<d>.<T>`.
    pub fn ptrue_cnt(pn: PnReg, elem: ElementType) -> Self {
        SveInst::PtrueCnt { pn, elem }
    }

    /// Convenience constructor: 32-bit single-vector load.
    pub fn ld1w(zt: ZReg, pg: PReg, rn: XReg, imm_vl: i8) -> Self {
        SveInst::Ld1 {
            zt,
            elem: ElementType::F32,
            pg,
            rn,
            imm_vl,
        }
    }

    /// Convenience constructor: 32-bit single-vector store.
    pub fn st1w(zt: ZReg, pg: PReg, rn: XReg, imm_vl: i8) -> Self {
        SveInst::St1 {
            zt,
            elem: ElementType::F32,
            pg,
            rn,
            imm_vl,
        }
    }

    /// Convenience constructor: 32-bit multi-vector load (`count` ∈ {2, 4}).
    pub fn ld1w_multi(zt: ZReg, count: u8, pn: PnReg, rn: XReg, imm_vl: i8) -> Self {
        assert!(
            count == 2 || count == 4,
            "multi-vector count must be 2 or 4"
        );
        SveInst::Ld1Multi {
            zt,
            count,
            elem: ElementType::F32,
            pn,
            rn,
            imm_vl,
        }
    }

    /// Convenience constructor: 32-bit multi-vector store (`count` ∈ {2, 4}).
    pub fn st1w_multi(zt: ZReg, count: u8, pn: PnReg, rn: XReg, imm_vl: i8) -> Self {
        assert!(
            count == 2 || count == 4,
            "multi-vector count must be 2 or 4"
        );
        SveInst::St1Multi {
            zt,
            count,
            elem: ElementType::F32,
            pn,
            rn,
            imm_vl,
        }
    }

    /// Execution class for the timing model.
    pub fn class(&self) -> InstClass {
        match self {
            SveInst::Ptrue { .. }
            | SveInst::PtrueCnt { .. }
            | SveInst::Whilelt { .. }
            | SveInst::WhileltCnt { .. } => InstClass::SvePred,
            SveInst::Ld1 { .. }
            | SveInst::St1 { .. }
            | SveInst::Ld1Multi { .. }
            | SveInst::St1Multi { .. }
            | SveInst::LdrZ { .. }
            | SveInst::StrZ { .. } => InstClass::SveMem,
            SveInst::AddVl { .. } => InstClass::IntAlu,
            SveInst::FmlaSve { .. } | SveInst::DupImm { .. } => InstClass::SveFp,
        }
    }

    /// Arithmetic operations performed at streaming vector length `svl`.
    pub fn arith_ops(&self, svl: StreamingVectorLength) -> u64 {
        match self {
            SveInst::FmlaSve { elem, .. } => 2 * elem.elems_per_vector(svl) as u64,
            _ => 0,
        }
    }

    /// Bytes moved to or from memory at streaming vector length `svl`.
    pub fn mem_bytes(&self, svl: StreamingVectorLength) -> u64 {
        let vl = svl.bytes() as u64;
        match self {
            SveInst::Ld1 { .. }
            | SveInst::St1 { .. }
            | SveInst::LdrZ { .. }
            | SveInst::StrZ { .. } => vl,
            SveInst::Ld1Multi { count, .. } | SveInst::St1Multi { count, .. } => vl * *count as u64,
            _ => 0,
        }
    }

    /// `true` if this instruction writes memory.
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            SveInst::St1 { .. } | SveInst::St1Multi { .. } | SveInst::StrZ { .. }
        )
    }

    /// `true` if this instruction reads memory.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            SveInst::Ld1 { .. } | SveInst::Ld1Multi { .. } | SveInst::LdrZ { .. }
        )
    }
}

fn mem_mnemonic(prefix: &str, elem: ElementType) -> String {
    // Memory mnemonics use b/h/w/d (word, not "s" as in the register suffix).
    let size = match elem.bits() {
        8 => "b",
        16 => "h",
        32 => "w",
        _ => "d",
    };
    format!("{prefix}1{size}")
}

impl fmt::Display for SveInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SveInst::Ptrue { pd, elem } => write!(f, "ptrue {pd}.{}", elem.sve_suffix()),
            SveInst::PtrueCnt { pn, elem } => write!(f, "ptrue {pn}.{}", elem.sve_suffix()),
            SveInst::Whilelt { pd, elem, rn, rm } => {
                write!(f, "whilelt {pd}.{}, {rn}, {rm}", elem.sve_suffix())
            }
            SveInst::WhileltCnt {
                pn,
                elem,
                rn,
                rm,
                vl,
            } => {
                write!(f, "whilelt {pn}.{}, {rn}, {rm}, vlx{vl}", elem.sve_suffix())
            }
            SveInst::Ld1 {
                zt,
                elem,
                pg,
                rn,
                imm_vl,
            } => {
                let s = elem.sve_suffix();
                if *imm_vl == 0 {
                    write!(
                        f,
                        "{} {{ {zt}.{s} }}, {pg}/z, [{rn}]",
                        mem_mnemonic("ld", *elem)
                    )
                } else {
                    write!(
                        f,
                        "{} {{ {zt}.{s} }}, {pg}/z, [{rn}, #{imm_vl}, mul vl]",
                        mem_mnemonic("ld", *elem)
                    )
                }
            }
            SveInst::St1 {
                zt,
                elem,
                pg,
                rn,
                imm_vl,
            } => {
                let s = elem.sve_suffix();
                if *imm_vl == 0 {
                    write!(
                        f,
                        "{} {{ {zt}.{s} }}, {pg}, [{rn}]",
                        mem_mnemonic("st", *elem)
                    )
                } else {
                    write!(
                        f,
                        "{} {{ {zt}.{s} }}, {pg}, [{rn}, #{imm_vl}, mul vl]",
                        mem_mnemonic("st", *elem)
                    )
                }
            }
            SveInst::Ld1Multi {
                zt,
                count,
                elem,
                pn,
                rn,
                imm_vl,
            } => {
                let s = elem.sve_suffix();
                let last = zt.offset(count - 1);
                if *imm_vl == 0 {
                    write!(
                        f,
                        "{} {{ {zt}.{s} - {last}.{s} }}, {pn}/z, [{rn}]",
                        mem_mnemonic("ld", *elem)
                    )
                } else {
                    write!(
                        f,
                        "{} {{ {zt}.{s} - {last}.{s} }}, {pn}/z, [{rn}, #{imm_vl}, mul vl]",
                        mem_mnemonic("ld", *elem)
                    )
                }
            }
            SveInst::St1Multi {
                zt,
                count,
                elem,
                pn,
                rn,
                imm_vl,
            } => {
                let s = elem.sve_suffix();
                let last = zt.offset(count - 1);
                if *imm_vl == 0 {
                    write!(
                        f,
                        "{} {{ {zt}.{s} - {last}.{s} }}, {pn}, [{rn}]",
                        mem_mnemonic("st", *elem)
                    )
                } else {
                    write!(
                        f,
                        "{} {{ {zt}.{s} - {last}.{s} }}, {pn}, [{rn}, #{imm_vl}, mul vl]",
                        mem_mnemonic("st", *elem)
                    )
                }
            }
            SveInst::LdrZ { zt, rn, imm_vl } => {
                if *imm_vl == 0 {
                    write!(f, "ldr {zt}, [{rn}]")
                } else {
                    write!(f, "ldr {zt}, [{rn}, #{imm_vl}, mul vl]")
                }
            }
            SveInst::StrZ { zt, rn, imm_vl } => {
                if *imm_vl == 0 {
                    write!(f, "str {zt}, [{rn}]")
                } else {
                    write!(f, "str {zt}, [{rn}, #{imm_vl}, mul vl]")
                }
            }
            SveInst::FmlaSve {
                zd,
                pg,
                zn,
                zm,
                elem,
            } => {
                let s = elem.sve_suffix();
                write!(f, "fmla {zd}.{s}, {pg}/m, {zn}.{s}, {zm}.{s}")
            }
            SveInst::DupImm { zd, elem, imm } => {
                write!(f, "dup {zd}.{}, #{imm}", elem.sve_suffix())
            }
            SveInst::AddVl { rd, rn, imm } => write!(f, "addvl {rd}, {rn}, #{imm}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::short::*;

    const SVL: StreamingVectorLength = StreamingVectorLength::M4;

    #[test]
    fn classes() {
        assert_eq!(
            SveInst::ptrue(p(0), ElementType::I8).class(),
            InstClass::SvePred
        );
        assert_eq!(
            SveInst::ld1w(z(0), p(0), x(0), 0).class(),
            InstClass::SveMem
        );
        assert_eq!(
            SveInst::FmlaSve {
                zd: z(0),
                pg: p(0),
                zn: z(1),
                zm: z(2),
                elem: ElementType::F32
            }
            .class(),
            InstClass::SveFp
        );
        assert_eq!(
            SveInst::AddVl {
                rd: x(0),
                rn: x(0),
                imm: 2
            }
            .class(),
            InstClass::IntAlu
        );
    }

    #[test]
    fn ssve_fmla_ops() {
        // SSVE FP32 FMLA on a 512-bit vector: 16 lanes * 2 ops = 32.
        let i = SveInst::FmlaSve {
            zd: z(0),
            pg: p(0),
            zn: z(1),
            zm: z(2),
            elem: ElementType::F32,
        };
        assert_eq!(i.arith_ops(SVL), 32);
        let d = SveInst::FmlaSve {
            zd: z(0),
            pg: p(0),
            zn: z(1),
            zm: z(2),
            elem: ElementType::F64,
        };
        assert_eq!(d.arith_ops(SVL), 16);
    }

    #[test]
    fn memory_sizes() {
        assert_eq!(SveInst::ld1w(z(0), p(0), x(0), 0).mem_bytes(SVL), 64);
        assert_eq!(
            SveInst::ld1w_multi(z(0), 2, pn(8), x(0), 0).mem_bytes(SVL),
            128
        );
        assert_eq!(
            SveInst::ld1w_multi(z(0), 4, pn(8), x(0), 0).mem_bytes(SVL),
            256
        );
        assert_eq!(
            SveInst::LdrZ {
                zt: z(0),
                rn: x(0),
                imm_vl: 0
            }
            .mem_bytes(SVL),
            64
        );
        assert!(SveInst::st1w(z(0), p(0), x(0), 0).is_store());
        assert!(SveInst::ld1w(z(0), p(0), x(0), 0).is_load());
        assert!(!SveInst::ld1w(z(0), p(0), x(0), 0).is_store());
    }

    #[test]
    #[should_panic(expected = "must be 2 or 4")]
    fn multi_count_validated() {
        let _ = SveInst::ld1w_multi(z(0), 3, pn(8), x(0), 0);
    }

    #[test]
    fn display_matches_paper_listings() {
        // Lst. 3 line 1 / Lst. 4 line 5 style.
        assert_eq!(
            SveInst::ld1w_multi(z(0), 4, pn(8), x(0), 0).to_string(),
            "ld1w { z0.s - z3.s }, pn8/z, [x0]"
        );
        assert_eq!(
            SveInst::ld1w_multi(z(2), 2, pn(9), x(1), 0).to_string(),
            "ld1w { z2.s - z3.s }, pn9/z, [x1]"
        );
        assert_eq!(
            SveInst::ptrue(p(0), ElementType::I8).to_string(),
            "ptrue p0.b"
        );
        assert_eq!(
            SveInst::FmlaSve {
                zd: z(0),
                pg: p(0),
                zn: z(30),
                zm: z(31),
                elem: ElementType::F32
            }
            .to_string(),
            "fmla z0.s, p0/m, z30.s, z31.s"
        );
        assert_eq!(
            SveInst::ld1w(z(5), p(1), x(2), 3).to_string(),
            "ld1w { z5.s }, p1/z, [x2, #3, mul vl]"
        );
        assert_eq!(
            SveInst::Whilelt {
                pd: p(2),
                elem: ElementType::F32,
                rn: x(3),
                rm: x(4)
            }
            .to_string(),
            "whilelt p2.s, x3, x4"
        );
    }

    #[test]
    fn register_list_wraps() {
        let i = SveInst::ld1w_multi(z(30), 4, pn(8), x(0), 0);
        assert_eq!(i.to_string(), "ld1w { z30.s - z1.s }, pn8/z, [x0]");
    }
}
