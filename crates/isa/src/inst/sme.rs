//! SME / SME2 instructions: outer products, ZA moves, ZA array loads and
//! stores, multi-vector FMLA and streaming-mode control.

use super::InstClass;
use crate::regs::{PReg, TileSliceDir, XReg, ZReg, ZaTile};
use crate::types::{ElementType, StreamingVectorLength};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An SME / SME2 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SmeInst {
    /// `smstart` / `smstart za` — enable streaming mode and/or the ZA array.
    Smstart {
        /// If `true`, only the ZA storage is enabled (`smstart za`).
        za_only: bool,
    },
    /// `smstop` / `smstop za` — disable streaming mode and/or the ZA array.
    Smstop {
        /// If `true`, only the ZA storage is disabled (`smstop za`).
        za_only: bool,
    },
    /// `fmopa za<t>.<T>, pn/m, pm/m, zn.<T>, zm.<T>` — floating-point outer
    /// product and accumulate (non-widening), the paper's core instruction.
    Fmopa {
        /// Destination tile index.
        tile: u8,
        /// Element type (F32 or F64).
        elem: ElementType,
        /// Row predicate (masks elements of `zn`).
        pn: PReg,
        /// Column predicate (masks elements of `zm`).
        pm: PReg,
        /// Column vector operand (contributes tile rows).
        zn: ZReg,
        /// Row vector operand (contributes tile columns).
        zm: ZReg,
    },
    /// `fmopa za<t>.s, pn/m, pm/m, zn.h, zm.h` (FP16) or
    /// `bfmopa za<t>.s, ...` (BF16) — widening sum-of-two outer products
    /// accumulating into an FP32 tile.
    FmopaWide {
        /// Destination tile index (FP32 tile).
        tile: u8,
        /// Input element type (F16 or BF16).
        from: ElementType,
        /// Row predicate.
        pn: PReg,
        /// Column predicate.
        pm: PReg,
        /// First source vector.
        zn: ZReg,
        /// Second source vector.
        zm: ZReg,
    },
    /// `smopa za<t>.s, pn/m, pm/m, zn.b, zm.b` (I8, 4-way) or `.h` (I16,
    /// 2-way) — widening signed integer sum-of-outer-products accumulating
    /// into an I32 tile.
    Smopa {
        /// Destination tile index (I32 tile).
        tile: u8,
        /// Input element type (I8 or I16).
        from: ElementType,
        /// Row predicate.
        pn: PReg,
        /// Column predicate.
        pm: PReg,
        /// First source vector.
        zn: ZReg,
        /// Second source vector.
        zm: ZReg,
    },
    /// `mov za<t><h|v>.<T>[w<s>, o:o+N-1], { zt..zt+N-1 }` — copy a group of
    /// 1, 2 or 4 vector registers into consecutive tile slices
    /// (MOVA, vector-to-tile).
    MovaToTile {
        /// Destination tile.
        tile: ZaTile,
        /// Horizontal or vertical slice view.
        dir: TileSliceDir,
        /// Slice-index register (W12–W15).
        rs: XReg,
        /// Constant slice offset added to the register.
        offset: u8,
        /// First source vector register.
        zt: ZReg,
        /// Number of registers in the group (1, 2 or 4).
        count: u8,
    },
    /// `mov { zt..zt+N-1 }, za<t><h|v>.<T>[w<s>, o:o+N-1]` — copy consecutive
    /// tile slices into a group of vector registers (MOVA, tile-to-vector).
    MovaFromTile {
        /// Source tile.
        tile: ZaTile,
        /// Horizontal or vertical slice view.
        dir: TileSliceDir,
        /// Slice-index register (W12–W15).
        rs: XReg,
        /// Constant slice offset added to the register.
        offset: u8,
        /// First destination vector register.
        zt: ZReg,
        /// Number of registers in the group (1, 2 or 4).
        count: u8,
    },
    /// `ldr za[w<s>, #off], [xn, #off, mul vl]` — load one ZA array vector
    /// (SVL bits) directly from memory.
    LdrZa {
        /// Slice-index register (W12–W15).
        rs: XReg,
        /// Offset added to both the slice index and the address (0–15).
        offset: u8,
        /// Base address register.
        rn: XReg,
    },
    /// `str za[w<s>, #off], [xn, #off, mul vl]` — store one ZA array vector
    /// directly to memory.
    StrZa {
        /// Slice-index register (W12–W15).
        rs: XReg,
        /// Offset added to both the slice index and the address (0–15).
        offset: u8,
        /// Base address register.
        rn: XReg,
    },
    /// `zero { mask }` — zero the 64-bit tiles selected by an 8-bit mask.
    ZeroZa {
        /// Bit `i` zeroes tile `za<i>.d`.
        mask: u8,
    },
    /// `fmla za.<T>[w<v>, off, vgx<N>], { zn..zn+N-1 }, zm` — SME2
    /// multi-vector FMLA (multiple vectors and single vector).
    FmlaZaVectors {
        /// Element type (F32 or F64).
        elem: ElementType,
        /// Vector-group size (2 or 4).
        vgx: u8,
        /// Vector-select register (W8–W11).
        rv: XReg,
        /// Constant offset added to the vector-select register.
        offset: u8,
        /// First multi-vector source register.
        zn: ZReg,
        /// Single-vector source register.
        zm: ZReg,
    },
}

impl SmeInst {
    /// Convenience constructor for the FP32 non-widening outer product used
    /// throughout the paper (Lst. 2, Lst. 4).
    pub fn fmopa_f32(tile: u8, pn: PReg, pm: PReg, zn: ZReg, zm: ZReg) -> Self {
        assert!(tile < 4, "FP32 tile index must be 0..4, got {tile}");
        SmeInst::Fmopa {
            tile,
            elem: ElementType::F32,
            pn,
            pm,
            zn,
            zm,
        }
    }

    /// Convenience constructor for the FP64 non-widening outer product.
    pub fn fmopa_f64(tile: u8, pn: PReg, pm: PReg, zn: ZReg, zm: ZReg) -> Self {
        assert!(tile < 8, "FP64 tile index must be 0..8, got {tile}");
        SmeInst::Fmopa {
            tile,
            elem: ElementType::F64,
            pn,
            pm,
            zn,
            zm,
        }
    }

    /// Convenience constructor for the BF16 widening outer product.
    pub fn bfmopa(tile: u8, pn: PReg, pm: PReg, zn: ZReg, zm: ZReg) -> Self {
        assert!(tile < 4, "widening outer products target FP32 tiles 0..4");
        SmeInst::FmopaWide {
            tile,
            from: ElementType::BF16,
            pn,
            pm,
            zn,
            zm,
        }
    }

    /// Convenience constructor for the signed 8-bit integer outer product.
    pub fn smopa_i8(tile: u8, pn: PReg, pm: PReg, zn: ZReg, zm: ZReg) -> Self {
        assert!(tile < 4, "integer outer products target I32 tiles 0..4");
        SmeInst::Smopa {
            tile,
            from: ElementType::I8,
            pn,
            pm,
            zn,
            zm,
        }
    }

    /// Build a `zero {..}` mask that clears the given FP32 (`.s`) tiles.
    ///
    /// Architecturally, `za<n>.s` occupies the two 64-bit tiles `za<n>.d`
    /// and `za<n+4>.d`, so each selected `.s` tile sets two mask bits.
    pub fn zero_mask_for_s_tiles(tiles: &[u8]) -> u8 {
        let mut mask = 0u8;
        for &t in tiles {
            assert!(t < 4, "FP32 tile index must be 0..4, got {t}");
            mask |= 1 << t;
            mask |= 1 << (t + 4);
        }
        mask
    }

    /// Execution class for the timing model.
    pub fn class(&self) -> InstClass {
        match self {
            SmeInst::Smstart { .. } | SmeInst::Smstop { .. } => InstClass::SmeControl,
            SmeInst::Fmopa { .. }
            | SmeInst::FmopaWide { .. }
            | SmeInst::Smopa { .. }
            | SmeInst::FmlaZaVectors { .. }
            | SmeInst::ZeroZa { .. } => InstClass::SmeCompute,
            SmeInst::MovaToTile { .. } | SmeInst::MovaFromTile { .. } => InstClass::SmeMove,
            SmeInst::LdrZa { .. } | SmeInst::StrZa { .. } => InstClass::SmeMem,
        }
    }

    /// Arithmetic operations performed at streaming vector length `svl`.
    ///
    /// Matches the per-instruction figures quoted in the paper: 512 for FP32
    /// FMOPA, 128 for FP64 FMOPA, 1024 for the BF16/FP16 widening MOPA, 2048
    /// for the I8 SMOPA and 128 for the FP32 SME2 multi-vector FMLA (all at
    /// SVL = 512).
    pub fn arith_ops(&self, svl: StreamingVectorLength) -> u64 {
        match self {
            SmeInst::Fmopa { elem, .. } => {
                let d = elem.tile_dim(svl) as u64;
                d * d * 2
            }
            SmeInst::FmopaWide { .. } => {
                // 2-way dot product into an FP32 tile: dim^2 * 2 ops * 2 way.
                let d = ElementType::F32.tile_dim(svl) as u64;
                d * d * 4
            }
            SmeInst::Smopa { from, .. } => {
                let d = ElementType::I32.tile_dim(svl) as u64;
                let way = match from {
                    ElementType::I8 => 4,
                    _ => 2,
                };
                d * d * 2 * way
            }
            SmeInst::FmlaZaVectors { elem, vgx, .. } => {
                2 * (*vgx as u64) * elem.elems_per_vector(svl) as u64
            }
            _ => 0,
        }
    }

    /// Bytes moved to or from memory at streaming vector length `svl`.
    pub fn mem_bytes(&self, svl: StreamingVectorLength) -> u64 {
        match self {
            SmeInst::LdrZa { .. } | SmeInst::StrZa { .. } => svl.bytes() as u64,
            _ => 0,
        }
    }

    /// `true` if this instruction writes memory.
    pub fn is_store(&self) -> bool {
        matches!(self, SmeInst::StrZa { .. })
    }

    /// `true` if this instruction reads memory.
    pub fn is_load(&self) -> bool {
        matches!(self, SmeInst::LdrZa { .. })
    }
}

fn wreg(r: &XReg) -> String {
    format!("w{}", r.index())
}

impl fmt::Display for SmeInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmeInst::Smstart { za_only } => {
                if *za_only {
                    f.write_str("smstart za")
                } else {
                    f.write_str("smstart")
                }
            }
            SmeInst::Smstop { za_only } => {
                if *za_only {
                    f.write_str("smstop za")
                } else {
                    f.write_str("smstop")
                }
            }
            SmeInst::Fmopa {
                tile,
                elem,
                pn,
                pm,
                zn,
                zm,
            } => {
                let s = elem.sve_suffix();
                write!(f, "fmopa za{tile}.{s}, {pn}/m, {pm}/m, {zn}.{s}, {zm}.{s}")
            }
            SmeInst::FmopaWide {
                tile,
                from,
                pn,
                pm,
                zn,
                zm,
            } => {
                let mnemonic = if *from == ElementType::BF16 {
                    "bfmopa"
                } else {
                    "fmopa"
                };
                write!(f, "{mnemonic} za{tile}.s, {pn}/m, {pm}/m, {zn}.h, {zm}.h")
            }
            SmeInst::Smopa {
                tile,
                from,
                pn,
                pm,
                zn,
                zm,
            } => {
                let s = from.sve_suffix();
                write!(f, "smopa za{tile}.s, {pn}/m, {pm}/m, {zn}.{s}, {zm}.{s}")
            }
            SmeInst::MovaToTile {
                tile,
                dir,
                rs,
                offset,
                zt,
                count,
            } => {
                let s = tile.elem.sve_suffix();
                let last = zt.offset(count - 1);
                let range = if *count == 1 {
                    format!("{offset}")
                } else {
                    format!("{}:{}", offset, offset + count - 1)
                };
                if *count == 1 {
                    write!(
                        f,
                        "mov za{}{dir}.{s}[{}, {range}], {zt}.{s}",
                        tile.index,
                        wreg(rs)
                    )
                } else {
                    write!(
                        f,
                        "mov za{}{dir}.{s}[{}, {range}], {{ {zt}.{s} - {last}.{s} }}",
                        tile.index,
                        wreg(rs)
                    )
                }
            }
            SmeInst::MovaFromTile {
                tile,
                dir,
                rs,
                offset,
                zt,
                count,
            } => {
                let s = tile.elem.sve_suffix();
                let last = zt.offset(count - 1);
                let range = if *count == 1 {
                    format!("{offset}")
                } else {
                    format!("{}:{}", offset, offset + count - 1)
                };
                if *count == 1 {
                    write!(
                        f,
                        "mov {zt}.{s}, za{}{dir}.{s}[{}, {range}]",
                        tile.index,
                        wreg(rs)
                    )
                } else {
                    write!(
                        f,
                        "mov {{ {zt}.{s} - {last}.{s} }}, za{}{dir}.{s}[{}, {range}]",
                        tile.index,
                        wreg(rs)
                    )
                }
            }
            SmeInst::LdrZa { rs, offset, rn } => {
                if *offset == 0 {
                    write!(f, "ldr za[{}, 0], [{rn}]", wreg(rs))
                } else {
                    write!(
                        f,
                        "ldr za[{}, {offset}], [{rn}, #{offset}, mul vl]",
                        wreg(rs)
                    )
                }
            }
            SmeInst::StrZa { rs, offset, rn } => {
                if *offset == 0 {
                    write!(f, "str za[{}, 0], [{rn}]", wreg(rs))
                } else {
                    write!(
                        f,
                        "str za[{}, {offset}], [{rn}, #{offset}, mul vl]",
                        wreg(rs)
                    )
                }
            }
            SmeInst::ZeroZa { mask } => write!(f, "zero {{ za, mask #0x{mask:02x} }}"),
            SmeInst::FmlaZaVectors {
                elem,
                vgx,
                rv,
                offset,
                zn,
                zm,
            } => {
                let s = elem.sve_suffix();
                let last = zn.offset(vgx - 1);
                write!(
                    f,
                    "fmla za.{s}[{}, {offset}, vgx{vgx}], {{ {zn}.{s} - {last}.{s} }}, {zm}.{s}",
                    wreg(rv)
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::short::*;

    const SVL: StreamingVectorLength = StreamingVectorLength::M4;

    #[test]
    fn ops_per_instruction_match_the_paper() {
        // FP32 FMOPA: 16*16*2 = 512 operations on M4.
        assert_eq!(
            SmeInst::fmopa_f32(0, p(0), p(1), z(0), z(1)).arith_ops(SVL),
            512
        );
        // FP64 FMOPA: 8*8*2 = 128.
        assert_eq!(
            SmeInst::fmopa_f64(0, p(0), p(1), z(0), z(1)).arith_ops(SVL),
            128
        );
        // BF16 widening MOPA: 1024.
        assert_eq!(
            SmeInst::bfmopa(0, p(0), p(1), z(0), z(1)).arith_ops(SVL),
            1024
        );
        // I8 SMOPA (4-way): 2048.
        assert_eq!(
            SmeInst::smopa_i8(0, p(0), p(1), z(0), z(1)).arith_ops(SVL),
            2048
        );
        // SME2 FP32 multi-vector FMLA, vgx4: 4 * 16 * 2 = 128.
        let fmla = SmeInst::FmlaZaVectors {
            elem: ElementType::F32,
            vgx: 4,
            rv: x(8),
            offset: 0,
            zn: z(0),
            zm: z(4),
        };
        assert_eq!(fmla.arith_ops(SVL), 128);
    }

    #[test]
    fn classes() {
        assert_eq!(
            SmeInst::Smstart { za_only: false }.class(),
            InstClass::SmeControl
        );
        assert_eq!(
            SmeInst::fmopa_f32(1, p(0), p(1), z(2), z(3)).class(),
            InstClass::SmeCompute
        );
        assert_eq!(
            SmeInst::LdrZa {
                rs: x(12),
                offset: 0,
                rn: x(0)
            }
            .class(),
            InstClass::SmeMem
        );
        assert_eq!(
            SmeInst::MovaToTile {
                tile: ZaTile::s(0),
                dir: TileSliceDir::Horizontal,
                rs: x(12),
                offset: 0,
                zt: z(0),
                count: 4
            }
            .class(),
            InstClass::SmeMove
        );
    }

    #[test]
    fn za_transfer_sizes() {
        assert_eq!(
            SmeInst::LdrZa {
                rs: x(12),
                offset: 0,
                rn: x(0)
            }
            .mem_bytes(SVL),
            64
        );
        assert_eq!(
            SmeInst::StrZa {
                rs: x(12),
                offset: 3,
                rn: x(0)
            }
            .mem_bytes(SVL),
            64
        );
        assert!(SmeInst::StrZa {
            rs: x(12),
            offset: 0,
            rn: x(0)
        }
        .is_store());
        assert!(SmeInst::LdrZa {
            rs: x(12),
            offset: 0,
            rn: x(0)
        }
        .is_load());
        assert_eq!(
            SmeInst::fmopa_f32(0, p(0), p(1), z(0), z(1)).mem_bytes(SVL),
            0
        );
    }

    #[test]
    fn zero_mask_mapping() {
        assert_eq!(SmeInst::zero_mask_for_s_tiles(&[0]), 0b0001_0001);
        assert_eq!(SmeInst::zero_mask_for_s_tiles(&[0, 1, 2, 3]), 0xff);
        assert_eq!(SmeInst::zero_mask_for_s_tiles(&[3]), 0b1000_1000);
    }

    #[test]
    #[should_panic(expected = "tile index must be 0..4")]
    fn fp32_tile_bounds() {
        let _ = SmeInst::fmopa_f32(4, p(0), p(1), z(0), z(1));
    }

    #[test]
    fn display_matches_paper_listings() {
        // Lst. 2 line 6.
        assert_eq!(
            SmeInst::fmopa_f32(0, p(0), p(1), z(0), z(1)).to_string(),
            "fmopa za0.s, p0/m, p1/m, z0.s, z1.s"
        );
        // Lst. 4 line 9 (operand order: B column vector, A row vector).
        assert_eq!(
            SmeInst::fmopa_f32(1, p(1), p(2), z(2), z(1)).to_string(),
            "fmopa za1.s, p1/m, p2/m, z2.s, z1.s"
        );
        // Lst. 3 line 2 / Lst. 5 line 2.
        let mova = SmeInst::MovaToTile {
            tile: ZaTile::s(0),
            dir: TileSliceDir::Horizontal,
            rs: x(12),
            offset: 0,
            zt: z(0),
            count: 4,
        };
        assert_eq!(mova.to_string(), "mov za0h.s[w12, 0:3], { z0.s - z3.s }");
        // Lst. 5 line 10.
        let mova_back = SmeInst::MovaFromTile {
            tile: ZaTile::s(0),
            dir: TileSliceDir::Vertical,
            rs: x(12),
            offset: 0,
            zt: z(0),
            count: 4,
        };
        assert_eq!(
            mova_back.to_string(),
            "mov { z0.s - z3.s }, za0v.s[w12, 0:3]"
        );
        assert_eq!(
            SmeInst::LdrZa {
                rs: x(12),
                offset: 2,
                rn: x(0)
            }
            .to_string(),
            "ldr za[w12, 2], [x0, #2, mul vl]"
        );
        assert_eq!(SmeInst::Smstart { za_only: false }.to_string(), "smstart");
        let fmla = SmeInst::FmlaZaVectors {
            elem: ElementType::F32,
            vgx: 4,
            rv: x(8),
            offset: 0,
            zn: z(0),
            zm: z(4),
        };
        assert_eq!(
            fmla.to_string(),
            "fmla za.s[w8, 0, vgx4], { z0.s - z3.s }, z4.s"
        );
    }
}
