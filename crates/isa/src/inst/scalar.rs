//! A64 base (scalar) instructions: control flow, address arithmetic and
//! immediate moves.

use super::InstClass;
use crate::regs::XReg;
use crate::types::Cond;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Target of a PC-relative branch.
///
/// While a kernel is being built the target is a symbolic [`crate::asm::Label`]
/// identifier; [`crate::asm::Assembler::finish`] rewrites every target into a
/// resolved instruction-count offset relative to the branch itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BranchTarget {
    /// Unresolved label (assembler-internal identifier).
    Label(u32),
    /// Resolved offset in *instructions* relative to the branch instruction.
    /// Multiply by four for the byte offset used in the machine encoding.
    Offset(i32),
}

impl BranchTarget {
    /// The resolved offset, panicking if the target is still symbolic.
    pub fn offset(self) -> i32 {
        match self {
            BranchTarget::Offset(o) => o,
            BranchTarget::Label(l) => panic!("branch target label {l} has not been resolved"),
        }
    }

    /// `true` once the target has been resolved to an offset.
    pub fn is_resolved(self) -> bool {
        matches!(self, BranchTarget::Offset(_))
    }
}

/// Shift applied to the second operand of a register-register ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShiftOp {
    /// Logical shift left by the given amount.
    Lsl(u8),
}

impl ShiftOp {
    /// Shift amount in bits.
    pub fn amount(self) -> u8 {
        match self {
            ShiftOp::Lsl(n) => n,
        }
    }
}

/// An A64 base instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScalarInst {
    /// `movz xd, #imm16, lsl #(hw*16)` — move wide with zero.
    MovZ {
        /// Destination register.
        rd: XReg,
        /// 16-bit immediate.
        imm16: u16,
        /// Half-word shift selector (0–3).
        hw: u8,
    },
    /// `movk xd, #imm16, lsl #(hw*16)` — move wide with keep.
    MovK {
        /// Destination register.
        rd: XReg,
        /// 16-bit immediate.
        imm16: u16,
        /// Half-word shift selector (0–3).
        hw: u8,
    },
    /// `mov xd, xn` (alias of `orr xd, xzr, xn`).
    MovReg {
        /// Destination register.
        rd: XReg,
        /// Source register.
        rn: XReg,
    },
    /// `add xd, xn, #imm12 {, lsl #12}`.
    AddImm {
        /// Destination register.
        rd: XReg,
        /// Source register.
        rn: XReg,
        /// Unsigned 12-bit immediate.
        imm12: u16,
        /// If `true` the immediate is shifted left by 12 bits.
        shift12: bool,
    },
    /// `sub xd, xn, #imm12 {, lsl #12}`.
    SubImm {
        /// Destination register.
        rd: XReg,
        /// Source register.
        rn: XReg,
        /// Unsigned 12-bit immediate.
        imm12: u16,
        /// If `true` the immediate is shifted left by 12 bits.
        shift12: bool,
    },
    /// `subs xd, xn, #imm12` — subtract and set flags (used for loop counters
    /// driven by `b.cond`).
    SubsImm {
        /// Destination register.
        rd: XReg,
        /// Source register.
        rn: XReg,
        /// Unsigned 12-bit immediate.
        imm12: u16,
    },
    /// `add xd, xn, xm {, lsl #amount}`.
    AddReg {
        /// Destination register.
        rd: XReg,
        /// First source register.
        rn: XReg,
        /// Second source register.
        rm: XReg,
        /// Optional shift of the second source.
        shift: Option<ShiftOp>,
    },
    /// `sub xd, xn, xm {, lsl #amount}`.
    SubReg {
        /// Destination register.
        rd: XReg,
        /// First source register.
        rn: XReg,
        /// Second source register.
        rm: XReg,
        /// Optional shift of the second source.
        shift: Option<ShiftOp>,
    },
    /// `madd xd, xn, xm, xa` — multiply-add (`xd = xa + xn * xm`).
    Madd {
        /// Destination register.
        rd: XReg,
        /// Multiplicand.
        rn: XReg,
        /// Multiplier.
        rm: XReg,
        /// Addend.
        ra: XReg,
    },
    /// `lsl xd, xn, #shift` (alias of UBFM).
    LslImm {
        /// Destination register.
        rd: XReg,
        /// Source register.
        rn: XReg,
        /// Shift amount (0–63).
        shift: u8,
    },
    /// `cmp xn, xm` (alias of `subs xzr, xn, xm`).
    CmpReg {
        /// First operand.
        rn: XReg,
        /// Second operand.
        rm: XReg,
    },
    /// `cmp xn, #imm12`.
    CmpImm {
        /// First operand.
        rn: XReg,
        /// Unsigned 12-bit immediate.
        imm12: u16,
    },
    /// `cbnz xn, label` — compare and branch if non-zero.
    Cbnz {
        /// Register compared against zero.
        rn: XReg,
        /// Branch target.
        target: BranchTarget,
    },
    /// `cbz xn, label` — compare and branch if zero.
    Cbz {
        /// Register compared against zero.
        rn: XReg,
        /// Branch target.
        target: BranchTarget,
    },
    /// `b label` — unconditional branch.
    B {
        /// Branch target.
        target: BranchTarget,
    },
    /// `b.cond label` — conditional branch on the flags.
    BCond {
        /// Branch condition.
        cond: Cond,
        /// Branch target.
        target: BranchTarget,
    },
    /// `nop`.
    Nop,
    /// `ret` — return from the kernel.
    Ret,
}

impl ScalarInst {
    /// Execution class for the timing model.
    pub fn class(&self) -> InstClass {
        match self {
            ScalarInst::Cbnz { .. }
            | ScalarInst::Cbz { .. }
            | ScalarInst::B { .. }
            | ScalarInst::BCond { .. }
            | ScalarInst::Ret => InstClass::Branch,
            _ => InstClass::IntAlu,
        }
    }

    /// Scalar instructions in the modelled subset never access memory.
    pub fn mem_bytes(&self) -> u64 {
        0
    }

    /// The branch target carried by this instruction, if any.
    pub fn branch_target(&self) -> Option<BranchTarget> {
        match self {
            ScalarInst::Cbnz { target, .. }
            | ScalarInst::Cbz { target, .. }
            | ScalarInst::B { target }
            | ScalarInst::BCond { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// Replace the branch target (used by the assembler during fix-up).
    pub fn set_branch_target(&mut self, new: BranchTarget) {
        match self {
            ScalarInst::Cbnz { target, .. }
            | ScalarInst::Cbz { target, .. }
            | ScalarInst::B { target }
            | ScalarInst::BCond { target, .. } => *target = new,
            _ => panic!("set_branch_target called on a non-branch instruction"),
        }
    }

    /// Convenience constructor: `mov xd, #imm` for a 16-bit immediate.
    pub fn mov_imm16(rd: XReg, imm: u16) -> Self {
        ScalarInst::MovZ {
            rd,
            imm16: imm,
            hw: 0,
        }
    }
}

impl fmt::Display for ScalarInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn tgt(t: &BranchTarget) -> String {
            match t {
                BranchTarget::Label(l) => format!("@L{l}"),
                BranchTarget::Offset(o) => format!("#{o}"),
            }
        }
        match self {
            ScalarInst::MovZ { rd, imm16, hw } => {
                if *hw == 0 {
                    write!(f, "movz {rd}, #{imm16}")
                } else {
                    write!(f, "movz {rd}, #{imm16}, lsl #{}", hw * 16)
                }
            }
            ScalarInst::MovK { rd, imm16, hw } => {
                write!(f, "movk {rd}, #{imm16}, lsl #{}", hw * 16)
            }
            ScalarInst::MovReg { rd, rn } => write!(f, "mov {rd}, {rn}"),
            ScalarInst::AddImm {
                rd,
                rn,
                imm12,
                shift12,
            } => {
                if *shift12 {
                    write!(f, "add {rd}, {rn}, #{imm12}, lsl #12")
                } else {
                    write!(f, "add {rd}, {rn}, #{imm12}")
                }
            }
            ScalarInst::SubImm {
                rd,
                rn,
                imm12,
                shift12,
            } => {
                if *shift12 {
                    write!(f, "sub {rd}, {rn}, #{imm12}, lsl #12")
                } else {
                    write!(f, "sub {rd}, {rn}, #{imm12}")
                }
            }
            ScalarInst::SubsImm { rd, rn, imm12 } => write!(f, "subs {rd}, {rn}, #{imm12}"),
            ScalarInst::AddReg { rd, rn, rm, shift } => match shift {
                Some(s) => write!(f, "add {rd}, {rn}, {rm}, lsl #{}", s.amount()),
                None => write!(f, "add {rd}, {rn}, {rm}"),
            },
            ScalarInst::SubReg { rd, rn, rm, shift } => match shift {
                Some(s) => write!(f, "sub {rd}, {rn}, {rm}, lsl #{}", s.amount()),
                None => write!(f, "sub {rd}, {rn}, {rm}"),
            },
            ScalarInst::Madd { rd, rn, rm, ra } => write!(f, "madd {rd}, {rn}, {rm}, {ra}"),
            ScalarInst::LslImm { rd, rn, shift } => write!(f, "lsl {rd}, {rn}, #{shift}"),
            ScalarInst::CmpReg { rn, rm } => write!(f, "cmp {rn}, {rm}"),
            ScalarInst::CmpImm { rn, imm12 } => write!(f, "cmp {rn}, #{imm12}"),
            ScalarInst::Cbnz { rn, target } => write!(f, "cbnz {rn}, {}", tgt(target)),
            ScalarInst::Cbz { rn, target } => write!(f, "cbz {rn}, {}", tgt(target)),
            ScalarInst::B { target } => write!(f, "b {}", tgt(target)),
            ScalarInst::BCond { cond, target } => write!(f, "b.{cond} {}", tgt(target)),
            ScalarInst::Nop => f.write_str("nop"),
            ScalarInst::Ret => f.write_str("ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::short::*;

    #[test]
    fn classes() {
        assert_eq!(ScalarInst::Ret.class(), InstClass::Branch);
        assert_eq!(
            ScalarInst::Cbnz {
                rn: x(0),
                target: BranchTarget::Offset(-5)
            }
            .class(),
            InstClass::Branch
        );
        assert_eq!(ScalarInst::mov_imm16(x(0), 42).class(), InstClass::IntAlu);
        assert_eq!(
            ScalarInst::AddReg {
                rd: x(0),
                rn: x(1),
                rm: x(2),
                shift: None
            }
            .class(),
            InstClass::IntAlu
        );
    }

    #[test]
    fn branch_target_accessors() {
        let mut i = ScalarInst::B {
            target: BranchTarget::Label(3),
        };
        assert_eq!(i.branch_target(), Some(BranchTarget::Label(3)));
        assert!(!i.branch_target().unwrap().is_resolved());
        i.set_branch_target(BranchTarget::Offset(-7));
        assert_eq!(i.branch_target().unwrap().offset(), -7);
        assert_eq!(ScalarInst::Nop.branch_target(), None);
    }

    #[test]
    #[should_panic(expected = "has not been resolved")]
    fn unresolved_offset_panics() {
        let _ = BranchTarget::Label(0).offset();
    }

    #[test]
    fn display() {
        assert_eq!(ScalarInst::mov_imm16(x(0), 30).to_string(), "movz x0, #30");
        assert_eq!(
            ScalarInst::SubImm {
                rd: x(0),
                rn: x(0),
                imm12: 1,
                shift12: false
            }
            .to_string(),
            "sub x0, x0, #1"
        );
        assert_eq!(
            ScalarInst::Cbnz {
                rn: x(8),
                target: BranchTarget::Offset(-9)
            }
            .to_string(),
            "cbnz x8, #-9"
        );
        assert_eq!(
            ScalarInst::AddReg {
                rd: x(0),
                rn: x(0),
                rm: x(9),
                shift: None
            }
            .to_string(),
            "add x0, x0, x9"
        );
        assert_eq!(
            ScalarInst::AddReg {
                rd: x(0),
                rn: x(0),
                rm: x(9),
                shift: Some(ShiftOp::Lsl(2))
            }
            .to_string(),
            "add x0, x0, x9, lsl #2"
        );
        assert_eq!(ScalarInst::Ret.to_string(), "ret");
    }

    #[test]
    fn no_memory_traffic() {
        assert_eq!(ScalarInst::Ret.mem_bytes(), 0);
        assert_eq!(ScalarInst::mov_imm16(x(3), 9).mem_bytes(), 0);
    }
}
