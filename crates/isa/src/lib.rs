//! # sme-isa
//!
//! A model of the AArch64 instruction-set subset used by the *Hello SME!*
//! reproduction: scalar control flow, Neon (ASIMD), SVE / Streaming SVE and
//! the Scalable Matrix Extension (SME / SME2).
//!
//! The crate provides four layers:
//!
//! * a **register and type model** ([`regs`], [`types`]) describing the
//!   architectural resources the paper's kernels use (X/V/Z/P registers, the
//!   ZA array and its tiles, element types, the streaming vector length);
//! * a **typed instruction representation** ([`inst`]) — every instruction
//!   the microbenchmarks and the GEMM generator emit is a variant of
//!   [`inst::Inst`], carrying fully-resolved operands;
//! * an **assembler** ([`asm`]) that turns instruction streams with labels
//!   into finished [`asm::Program`]s, fixing up branch targets, and
//! * an **encoder / decoder / disassembler** ([`encode`], [`decode`],
//!   [`disasm`]) that maps the typed representation to and from 32-bit
//!   AArch64 machine words, so that the JIT generator produces genuine
//!   machine code buffers exactly like the LIBXSMM backend described in the
//!   paper.
//!
//! The encodings follow the Arm Architecture Reference Manual field layout
//! for the emitted subset. Because no AArch64 toolchain is available in the
//! reproduction environment, bit-exactness is validated by exhaustive
//! encode/decode round-trip tests rather than by cross-checking against an
//! external assembler; the simulator in `sme-machine` executes the typed
//! representation and is therefore independent of any residual encoding
//! deviation.

#![warn(missing_docs)]

pub mod asm;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod inst;
pub mod regs;
pub mod types;

pub use asm::{Assembler, Label, Program};
pub use inst::{Inst, NeonInst, ScalarInst, SmeInst, SveInst};
pub use regs::{PReg, PnReg, VReg, XReg, ZReg, ZaTile};
pub use types::{ElementType, StreamingVectorLength};
