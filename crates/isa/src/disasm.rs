//! Textual disassembly of programs and machine-code buffers.
//!
//! Used by the generator's debugging interface (`CompiledKernel::disassembly`)
//! and by golden tests that compare generated code against the paper's
//! listings.

use crate::decode::decode;
use crate::inst::Inst;
use crate::Program;
use std::fmt::Write as _;

/// Render a program as an assembly listing with instruction indices and
/// encodings.
pub fn disassemble_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// {}", program.name());
    for (idx, inst) in program.insts().iter().enumerate() {
        let word = crate::encode::encode(inst);
        let _ = writeln!(out, "{:6}:  {word:08x}    {inst}", idx * 4);
    }
    out
}

/// Render raw instructions (without encodings), one per line.
pub fn disassemble_insts(insts: &[Inst]) -> String {
    let mut out = String::new();
    for inst in insts {
        let _ = writeln!(out, "{inst}");
    }
    out
}

/// Disassemble a little-endian machine-code buffer.
///
/// Words that cannot be decoded are rendered as `.word 0x????????`.
pub fn disassemble_bytes(bytes: &[u8]) -> String {
    let mut out = String::new();
    for (idx, chunk) in bytes.chunks_exact(4).enumerate() {
        let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        match decode(word) {
            Some(inst) => {
                let _ = writeln!(out, "{:6}:  {word:08x}    {inst}", idx * 4);
            }
            None => {
                let _ = writeln!(out, "{:6}:  {word:08x}    .word 0x{word:08x}", idx * 4);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::inst::{ScalarInst, SmeInst};
    use crate::regs::short::*;

    fn sample_program() -> Program {
        let mut a = Assembler::new("sample");
        let top = a.new_label();
        a.bind(top);
        a.push(ScalarInst::SubImm {
            rd: x(0),
            rn: x(0),
            imm12: 1,
            shift12: false,
        });
        a.push(SmeInst::fmopa_f32(0, p(0), p(1), z(0), z(1)));
        a.cbnz(x(0), top);
        a.ret();
        a.finish()
    }

    #[test]
    fn program_listing_contains_mnemonics() {
        let text = disassemble_program(&sample_program());
        assert!(text.contains("sub x0, x0, #1"));
        assert!(text.contains("fmopa za0.s, p0/m, p1/m, z0.s, z1.s"));
        assert!(text.contains("cbnz x0"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn byte_disassembly_roundtrips() {
        let program = sample_program();
        let text = disassemble_bytes(&program.encode_bytes());
        assert!(text.contains("fmopa"));
        assert!(
            !text.contains(".word"),
            "all emitted words must decode: {text}"
        );
    }

    #[test]
    fn undecodable_words_are_marked() {
        let text = disassemble_bytes(&[0u8; 4]);
        assert!(text.contains(".word 0x00000000"));
    }

    #[test]
    fn inst_listing() {
        let program = sample_program();
        let text = disassemble_insts(program.insts());
        assert_eq!(text.lines().count(), 4);
    }
}
