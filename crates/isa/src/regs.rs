//! Architectural register model: general-purpose, Neon, scalable vector,
//! predicate registers and the SME ZA array tiles.

use crate::types::ElementType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 64-bit general-purpose register `X0`–`X30`, or `XZR`.
///
/// Register 31 is modelled as the zero register; the stack pointer is
/// represented separately by [`XReg::SP`] since the generated kernels use it
/// only for scratch-memory addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct XReg(u8);

impl XReg {
    /// The zero register (reads as zero, writes are discarded).
    pub const XZR: XReg = XReg(31);
    /// The stack pointer, used for scratch allocations (transpose buffers).
    pub const SP: XReg = XReg(32);

    /// Construct `Xn` for `n` in `0..=30`, or `XZR`/`SP` via the constants.
    ///
    /// # Panics
    /// Panics if `n > 30`.
    pub fn new(n: u8) -> Self {
        assert!(n <= 30, "general purpose register index out of range: {n}");
        XReg(n)
    }

    /// Raw register index (31 = XZR, 32 = SP).
    pub const fn index(self) -> u8 {
        self.0
    }

    /// `true` if this is the zero register.
    pub const fn is_zero(self) -> bool {
        self.0 == 31
    }

    /// `true` if this is the stack pointer.
    pub const fn is_sp(self) -> bool {
        self.0 == 32
    }

    /// The 5-bit field used when encoding this register in an instruction.
    ///
    /// The stack pointer shares encoding 31 with XZR; the instruction class
    /// determines which is meant, exactly as in the real ISA.
    pub const fn enc(self) -> u32 {
        if self.0 == 32 {
            31
        } else {
            self.0 as u32
        }
    }
}

impl fmt::Display for XReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            31 => f.write_str("xzr"),
            32 => f.write_str("sp"),
            n => write!(f, "x{n}"),
        }
    }
}

/// A 128-bit Neon (ASIMD) vector register `V0`–`V31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VReg(u8);

impl VReg {
    /// Construct `Vn` for `n` in `0..=31`.
    ///
    /// # Panics
    /// Panics if `n > 31`.
    pub fn new(n: u8) -> Self {
        assert!(n <= 31, "Neon register index out of range: {n}");
        VReg(n)
    }

    /// Raw register index.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Encoding field value.
    pub const fn enc(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A scalable vector register `Z0`–`Z31` (SVL bits wide in streaming mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ZReg(u8);

impl ZReg {
    /// Construct `Zn` for `n` in `0..=31`.
    ///
    /// # Panics
    /// Panics if `n > 31`.
    pub fn new(n: u8) -> Self {
        assert!(n <= 31, "scalable vector register index out of range: {n}");
        ZReg(n)
    }

    /// Raw register index.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Encoding field value.
    pub const fn enc(self) -> u32 {
        self.0 as u32
    }

    /// The register `n` positions after this one, wrapping at 32.
    ///
    /// Multi-vector loads and MOVA group operations address consecutive
    /// registers; wrapping matches the architectural behaviour of register
    /// lists.
    pub const fn offset(self, n: u8) -> ZReg {
        ZReg((self.0 + n) % 32)
    }
}

impl fmt::Display for ZReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z{}", self.0)
    }
}

/// An SVE predicate register `P0`–`P15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PReg(u8);

impl PReg {
    /// Construct `Pn` for `n` in `0..=15`.
    ///
    /// # Panics
    /// Panics if `n > 15`.
    pub fn new(n: u8) -> Self {
        assert!(n <= 15, "predicate register index out of range: {n}");
        PReg(n)
    }

    /// Raw register index.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Encoding field value.
    pub const fn enc(self) -> u32 {
        self.0 as u32
    }

    /// `true` if the register can be used as a governing predicate in the
    /// 3-bit `Pg` field of predicated SVE instructions (P0–P7).
    pub const fn is_governing(self) -> bool {
        self.0 <= 7
    }
}

impl fmt::Display for PReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An SVE2.1/SME2 predicate-as-counter register `PN8`–`PN15`.
///
/// Predicate-as-counter registers govern the multi-vector (strided and
/// contiguous) loads and stores used by the two-step ZA transfer strategy
/// the paper identifies as fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PnReg(u8);

impl PnReg {
    /// Construct `PNn` for `n` in `8..=15`.
    ///
    /// # Panics
    /// Panics if `n` is outside `8..=15`.
    pub fn new(n: u8) -> Self {
        assert!(
            (8..=15).contains(&n),
            "predicate-as-counter register index out of range: {n}"
        );
        PnReg(n)
    }

    /// Raw register index (8–15).
    pub const fn index(self) -> u8 {
        self.0
    }

    /// The 3-bit encoding field (index minus 8).
    pub const fn enc(self) -> u32 {
        (self.0 - 8) as u32
    }

    /// View this counter register as the underlying predicate register.
    pub const fn as_preg(self) -> PReg {
        PReg(self.0)
    }
}

impl fmt::Display for PnReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pn{}", self.0)
    }
}

/// A ZA tile selector: element type plus tile index.
///
/// For a given element width the ZA array is divided into `bytes(element)`
/// square tiles: `za0.s`–`za3.s` for 32-bit elements, `za0.d`–`za7.d` for
/// 64-bit elements, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ZaTile {
    /// Tile index within the tiles available for `elem`.
    pub index: u8,
    /// Element type of the tile view.
    pub elem: ElementType,
}

impl ZaTile {
    /// Construct a tile selector, validating the index against the number of
    /// tiles available for the element type.
    ///
    /// # Panics
    /// Panics if `index` is out of range for `elem`.
    pub fn new(index: u8, elem: ElementType) -> Self {
        Self::try_new(index, elem).unwrap_or_else(|| {
            panic!(
                "tile index {index} out of range for {elem} (max {})",
                elem.num_tiles() - 1
            )
        })
    }

    /// Construct a tile selector, returning `None` when `index` is out of
    /// range for `elem` — the non-panicking form used by the decoder, where
    /// arbitrary input words must map to a structured "unknown" instead of
    /// an abort.
    pub fn try_new(index: u8, elem: ElementType) -> Option<Self> {
        if (index as usize) < elem.num_tiles() {
            Some(ZaTile { index, elem })
        } else {
            None
        }
    }

    /// Convenience constructor for a 32-bit (`.s`) tile, the workhorse of
    /// the paper's FP32 kernels.
    pub fn s(index: u8) -> Self {
        ZaTile::new(index, ElementType::F32)
    }

    /// Convenience constructor for a 64-bit (`.d`) tile.
    pub fn d(index: u8) -> Self {
        ZaTile::new(index, ElementType::F64)
    }
}

impl fmt::Display for ZaTile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "za{}.{}", self.index, self.elem.sve_suffix())
    }
}

/// Orientation of a ZA tile slice access (`zaNh` horizontal or `zaNv`
/// vertical).
///
/// The paper's in-register transposition (Lst. 5) writes a block through the
/// horizontal view and reads it back through the vertical view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileSliceDir {
    /// Horizontal slices: rows of the tile.
    Horizontal,
    /// Vertical slices: columns of the tile.
    Vertical,
}

impl TileSliceDir {
    /// Assembly suffix (`h` or `v`).
    pub const fn suffix(self) -> &'static str {
        match self {
            TileSliceDir::Horizontal => "h",
            TileSliceDir::Vertical => "v",
        }
    }
}

impl fmt::Display for TileSliceDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Shorthand constructors (`x(0)`, `z(31)`, …) used pervasively by the
/// generator and tests.
pub mod short {
    use super::*;

    /// `Xn` general-purpose register.
    pub fn x(n: u8) -> XReg {
        XReg::new(n)
    }

    /// `Vn` Neon register.
    pub fn v(n: u8) -> VReg {
        VReg::new(n)
    }

    /// `Zn` scalable vector register.
    pub fn z(n: u8) -> ZReg {
        ZReg::new(n)
    }

    /// `Pn` predicate register.
    pub fn p(n: u8) -> PReg {
        PReg::new(n)
    }

    /// `PNn` predicate-as-counter register.
    pub fn pn(n: u8) -> PnReg {
        PnReg::new(n)
    }
}

#[cfg(test)]
mod tests {
    use super::short::*;
    use super::*;

    #[test]
    fn xreg_construction_and_display() {
        assert_eq!(x(0).to_string(), "x0");
        assert_eq!(x(30).to_string(), "x30");
        assert_eq!(XReg::XZR.to_string(), "xzr");
        assert_eq!(XReg::SP.to_string(), "sp");
        assert!(XReg::XZR.is_zero());
        assert!(XReg::SP.is_sp());
        assert_eq!(XReg::SP.enc(), 31);
        assert_eq!(x(7).enc(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn xreg_rejects_31() {
        let _ = XReg::new(31);
    }

    #[test]
    fn vreg_and_zreg() {
        assert_eq!(v(31).to_string(), "v31");
        assert_eq!(z(0).to_string(), "z0");
        assert_eq!(z(30).offset(3).index(), 1, "register list wraps at 32");
        assert_eq!(z(4).offset(2).index(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zreg_rejects_32() {
        let _ = ZReg::new(32);
    }

    #[test]
    fn preg_governing() {
        assert!(p(0).is_governing());
        assert!(p(7).is_governing());
        assert!(!p(8).is_governing());
        assert_eq!(p(15).to_string(), "p15");
    }

    #[test]
    fn pnreg_range_and_encoding() {
        assert_eq!(pn(8).enc(), 0);
        assert_eq!(pn(15).enc(), 7);
        assert_eq!(pn(9).as_preg().index(), 9);
        assert_eq!(pn(8).to_string(), "pn8");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pnreg_rejects_low_indices() {
        let _ = PnReg::new(3);
    }

    #[test]
    fn za_tiles() {
        assert_eq!(ZaTile::s(3).to_string(), "za3.s");
        assert_eq!(ZaTile::d(7).to_string(), "za7.d");
        let byte_tile = ZaTile::new(0, ElementType::I8);
        assert_eq!(byte_tile.to_string(), "za0.b");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn za_tile_index_validated() {
        // Only four .s tiles exist.
        let _ = ZaTile::s(4);
    }

    #[test]
    fn slice_direction_suffix() {
        assert_eq!(TileSliceDir::Horizontal.suffix(), "h");
        assert_eq!(TileSliceDir::Vertical.suffix(), "v");
    }
}
