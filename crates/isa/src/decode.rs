//! Decoding of 32-bit machine words back into the typed instruction
//! representation.
//!
//! Decoding inverts [`crate::encode::encode`] for every instruction in the
//! modelled subset; words outside the subset return `None`. The round-trip
//! property `decode(encode(i)) == Some(i)` is checked exhaustively by the
//! crate's property-based tests and is the definition of encoding
//! correctness for the reproduction (see the [`crate::encode`] module
//! documentation).

use crate::encode::{neon, scalar, sme, sve};
use crate::inst::Inst;

/// Decode one machine word.
///
/// Returns `None` for words outside the modelled instruction subset.
pub fn decode(word: u32) -> Option<Inst> {
    if let Some(i) = scalar::decode(word) {
        return Some(Inst::Scalar(i));
    }
    if let Some(i) = sme::decode(word) {
        return Some(Inst::Sme(i));
    }
    if let Some(i) = sve::decode(word) {
        return Some(Inst::Sve(i));
    }
    if let Some(i) = neon::decode(word) {
        return Some(Inst::Neon(i));
    }
    None
}

/// Decode a buffer of little-endian machine-code bytes.
///
/// Returns `None` if the length is not a multiple of four or any word fails
/// to decode.
pub fn decode_bytes(bytes: &[u8]) -> Option<Vec<Inst>> {
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    bytes
        .chunks_exact(4)
        .map(|c| decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::inst::{NeonInst, ScalarInst, SmeInst, SveInst};
    use crate::regs::short::*;
    use crate::types::{ElementType, NeonArrangement};

    #[test]
    fn cross_class_dispatch() {
        let insts: Vec<Inst> = vec![
            ScalarInst::Ret.into(),
            ScalarInst::mov_imm16(x(0), 512).into(),
            NeonInst::fmla_vec(v(1), v(30), v(31), NeonArrangement::S4).into(),
            SveInst::ld1w_multi(z(0), 4, pn(8), x(0), 0).into(),
            SveInst::ptrue(p(0), ElementType::I8).into(),
            SmeInst::fmopa_f32(0, p(0), p(1), z(0), z(1)).into(),
            SmeInst::LdrZa {
                rs: x(12),
                offset: 1,
                rn: x(0),
            }
            .into(),
        ];
        for inst in insts {
            let word = crate::encode::encode(&inst);
            assert_eq!(decode(word), Some(inst), "word 0x{word:08x}");
        }
    }

    #[test]
    fn program_roundtrip_through_bytes() {
        let mut a = Assembler::new("roundtrip");
        let top = a.new_label();
        a.push(SveInst::ptrue(p(0), ElementType::I8));
        a.push(SveInst::ptrue(p(1), ElementType::I8));
        a.bind(top);
        a.push(ScalarInst::SubImm {
            rd: x(0),
            rn: x(0),
            imm12: 1,
            shift12: false,
        });
        for t in 0..4u8 {
            a.push(SmeInst::fmopa_f32(t, p(0), p(1), z(2 * t), z(2 * t + 1)));
        }
        a.cbnz(x(0), top);
        a.push(ScalarInst::mov_imm16(x(0), 32 * 512 / 16));
        a.ret();
        let program = a.finish();
        let bytes = program.encode_bytes();
        let decoded = decode_bytes(&bytes).expect("every emitted word must decode");
        assert_eq!(decoded, program.insts());
    }

    #[test]
    fn invalid_inputs() {
        assert_eq!(decode(0x0000_0000), None);
        assert_eq!(decode_bytes(&[1, 2, 3]), None, "length not a multiple of 4");
        assert_eq!(decode_bytes(&[0, 0, 0, 0]), None, "undecodable word");
        assert_eq!(decode_bytes(&[]), Some(vec![]));
    }
}
