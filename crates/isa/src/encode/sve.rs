//! Encoding and decoding of SVE / Streaming SVE instructions.
//!
//! The classic SVE loads/stores and data-processing instructions follow the
//! Arm ARM field layouts. The SVE2.1 / SME2 predicate-as-counter and
//! multi-vector forms use this crate's own field placement (documented per
//! function) validated by round-trip tests.

use super::fields::{get, put, signed, size_of, unsigned_to_signed};
use crate::inst::sve::SveInst;
use crate::regs::{PReg, PnReg, XReg, ZReg};
use crate::types::ElementType;

fn xreg(enc: u32) -> XReg {
    if enc == 31 {
        XReg::SP
    } else {
        XReg::new(enc as u8)
    }
}

fn xreg_nosp(enc: u32) -> XReg {
    if enc == 31 {
        XReg::XZR
    } else {
        XReg::new(enc as u8)
    }
}

fn zreg(enc: u32) -> ZReg {
    ZReg::new(enc as u8)
}

fn preg(enc: u32) -> PReg {
    PReg::new(enc as u8)
}

fn pnreg(enc: u32) -> PnReg {
    PnReg::new((enc + 8) as u8)
}

/// Canonical element type used when sizes are re-materialised by the
/// decoder: floating-point for 16/32/64-bit, `I8` for bytes.
fn canonical(elem: ElementType) -> ElementType {
    super::fields::elem_of(size_of(elem))
}

/// Size bits used by the contiguous load/store encodings (`ld1b/h/w/d`).
fn ls_elem_bits(elem: ElementType) -> u32 {
    size_of(elem)
}

/// Encode an SVE instruction.
///
/// # Panics
/// Panics if an operand is outside the encodable range (e.g. a governing
/// predicate above P7 or a `mul vl` offset outside −8..=7).
pub fn encode(inst: &SveInst) -> u32 {
    match *inst {
        SveInst::Ptrue { pd, elem } => 0x2518_E3E0 | put(size_of(elem), 22, 2) | pd.enc(),
        SveInst::PtrueCnt { pn, elem } => 0x2520_7810 | put(size_of(elem), 22, 2) | pn.enc(),
        SveInst::Whilelt { pd, elem, rn, rm } => {
            0x2520_0400
                | put(size_of(elem), 22, 2)
                | put(rm.enc(), 16, 5)
                | put(rn.enc(), 5, 5)
                | pd.enc()
        }
        SveInst::WhileltCnt {
            pn,
            elem,
            rn,
            rm,
            vl,
        } => {
            assert!(vl == 2 || vl == 4, "whilelt (counter) vl must be 2 or 4");
            0x2520_4000
                | put(size_of(elem), 22, 2)
                | put(rm.enc(), 16, 5)
                | put(rn.enc(), 5, 5)
                | put((vl == 4) as u32, 4, 1)
                | put(pn.enc(), 1, 3)
        }
        SveInst::Ld1 {
            zt,
            elem,
            pg,
            rn,
            imm_vl,
        } => {
            assert!(pg.is_governing(), "ld1 governing predicate must be P0-P7");
            let base = match ls_elem_bits(elem) {
                0 => 0xA400_A000,
                1 => 0xA4A0_A000,
                2 => 0xA540_A000,
                _ => 0xA5E0_A000,
            };
            base | put(signed(imm_vl as i64, 4), 16, 4)
                | put(pg.enc(), 10, 3)
                | put(rn.enc(), 5, 5)
                | zt.enc()
        }
        SveInst::St1 {
            zt,
            elem,
            pg,
            rn,
            imm_vl,
        } => {
            assert!(pg.is_governing(), "st1 governing predicate must be P0-P7");
            let base = match ls_elem_bits(elem) {
                0 => 0xE400_E000,
                1 => 0xE4A0_E000,
                2 => 0xE540_E000,
                _ => 0xE5E0_E000,
            };
            base | put(signed(imm_vl as i64, 4), 16, 4)
                | put(pg.enc(), 10, 3)
                | put(rn.enc(), 5, 5)
                | zt.enc()
        }
        SveInst::Ld1Multi {
            zt,
            count,
            elem,
            pn,
            rn,
            imm_vl,
        } => {
            assert!(
                count == 2 || count == 4,
                "multi-vector count must be 2 or 4"
            );
            // Reproduction-specific field placement (SME2 region):
            // [23]=0 [21:22]=size [16:19]=imm4 [15]=count4 [10:12]=pn
            // [5:9]=rn [0:4]=zt, opcode base 0xA000_4000.
            0xA000_4000
                | put(size_of(elem), 21, 2)
                | put(signed(imm_vl as i64, 4), 16, 4)
                | put((count == 4) as u32, 15, 1)
                | put(pn.enc(), 10, 3)
                | put(rn.enc(), 5, 5)
                | zt.enc()
        }
        SveInst::St1Multi {
            zt,
            count,
            elem,
            pn,
            rn,
            imm_vl,
        } => {
            assert!(
                count == 2 || count == 4,
                "multi-vector count must be 2 or 4"
            );
            // Same field placement as Ld1Multi, opcode base 0xE000_4000.
            0xE000_4000
                | put(size_of(elem), 21, 2)
                | put(signed(imm_vl as i64, 4), 16, 4)
                | put((count == 4) as u32, 15, 1)
                | put(pn.enc(), 10, 3)
                | put(rn.enc(), 5, 5)
                | zt.enc()
        }
        SveInst::LdrZ { zt, rn, imm_vl } => {
            let imm9 = signed(imm_vl as i64, 9);
            0x8580_4000
                | put(imm9 >> 3, 16, 6)
                | put(imm9 & 0x7, 10, 3)
                | put(rn.enc(), 5, 5)
                | zt.enc()
        }
        SveInst::StrZ { zt, rn, imm_vl } => {
            let imm9 = signed(imm_vl as i64, 9);
            0xE580_4000
                | put(imm9 >> 3, 16, 6)
                | put(imm9 & 0x7, 10, 3)
                | put(rn.enc(), 5, 5)
                | zt.enc()
        }
        SveInst::FmlaSve {
            zd,
            pg,
            zn,
            zm,
            elem,
        } => {
            assert!(pg.is_governing(), "fmla governing predicate must be P0-P7");
            0x6520_0000
                | put(size_of(elem), 22, 2)
                | put(zm.enc(), 16, 5)
                | put(pg.enc(), 10, 3)
                | put(zn.enc(), 5, 5)
                | zd.enc()
        }
        SveInst::DupImm { zd, elem, imm } => {
            0x2538_C000 | put(size_of(elem), 22, 2) | put((imm as u8) as u32, 5, 8) | zd.enc()
        }
        SveInst::AddVl { rd, rn, imm } => {
            0x0420_5000 | put(rn.enc(), 16, 5) | put(signed(imm as i64, 6), 5, 6) | rd.enc()
        }
    }
}

/// Decode an SVE instruction, returning `None` if the word is not in the
/// modelled SVE subset.
pub fn decode(word: u32) -> Option<SveInst> {
    // PTRUE (pattern ALL only).
    if word & 0xFF3F_FFE0 == 0x2518_E3E0 {
        return Some(SveInst::Ptrue {
            pd: preg(get(word, 0, 4)),
            elem: super::fields::elem_of(get(word, 22, 2)),
        });
    }
    // PTRUE (predicate as counter).
    if word & 0xFF3F_FFF8 == 0x2520_7810 {
        return Some(SveInst::PtrueCnt {
            pn: pnreg(get(word, 0, 3)),
            elem: super::fields::elem_of(get(word, 22, 2)),
        });
    }
    // WHILELT (predicate).
    if word & 0xFF20_FC10 == 0x2520_0400 {
        return Some(SveInst::Whilelt {
            pd: preg(get(word, 0, 4)),
            elem: super::fields::elem_of(get(word, 22, 2)),
            rn: xreg_nosp(get(word, 5, 5)),
            rm: xreg_nosp(get(word, 16, 5)),
        });
    }
    // WHILELT (predicate as counter).
    if word & 0xFF20_FC01 == 0x2520_4000 {
        return Some(SveInst::WhileltCnt {
            pn: pnreg(get(word, 1, 3)),
            elem: super::fields::elem_of(get(word, 22, 2)),
            rn: xreg_nosp(get(word, 5, 5)),
            rm: xreg_nosp(get(word, 16, 5)),
            vl: if get(word, 4, 1) == 1 { 4 } else { 2 },
        });
    }
    // LD1B/H/W/D (scalar plus immediate).
    for (bits, base) in [
        (0u32, 0xA400_A000u32),
        (1, 0xA4A0_A000),
        (2, 0xA540_A000),
        (3, 0xA5E0_A000),
    ] {
        if word & 0xFFF0_E000 == base {
            return Some(SveInst::Ld1 {
                zt: zreg(get(word, 0, 5)),
                elem: canonical(super::fields::elem_of(bits)),
                pg: preg(get(word, 10, 3)),
                rn: xreg(get(word, 5, 5)),
                imm_vl: unsigned_to_signed(get(word, 16, 4), 4) as i8,
            });
        }
    }
    // ST1B/H/W/D (scalar plus immediate).
    for (bits, base) in [
        (0u32, 0xE400_E000u32),
        (1, 0xE4A0_E000),
        (2, 0xE540_E000),
        (3, 0xE5E0_E000),
    ] {
        if word & 0xFFF0_E000 == base {
            return Some(SveInst::St1 {
                zt: zreg(get(word, 0, 5)),
                elem: canonical(super::fields::elem_of(bits)),
                pg: preg(get(word, 10, 3)),
                rn: xreg(get(word, 5, 5)),
                imm_vl: unsigned_to_signed(get(word, 16, 4), 4) as i8,
            });
        }
    }
    // LD1 (multi-vector, predicate-as-counter), reproduction layout.
    if word & 0xFF90_6000 == 0xA000_4000 {
        return Some(SveInst::Ld1Multi {
            zt: zreg(get(word, 0, 5)),
            count: if get(word, 15, 1) == 1 { 4 } else { 2 },
            elem: canonical(super::fields::elem_of(get(word, 21, 2))),
            pn: pnreg(get(word, 10, 3)),
            rn: xreg(get(word, 5, 5)),
            imm_vl: unsigned_to_signed(get(word, 16, 4), 4) as i8,
        });
    }
    // ST1 (multi-vector, predicate-as-counter), reproduction layout.
    if word & 0xFF90_6000 == 0xE000_4000 {
        return Some(SveInst::St1Multi {
            zt: zreg(get(word, 0, 5)),
            count: if get(word, 15, 1) == 1 { 4 } else { 2 },
            elem: canonical(super::fields::elem_of(get(word, 21, 2))),
            pn: pnreg(get(word, 10, 3)),
            rn: xreg(get(word, 5, 5)),
            imm_vl: unsigned_to_signed(get(word, 16, 4), 4) as i8,
        });
    }
    // LDR (vector).
    if word & 0xFFC0_E000 == 0x8580_4000 {
        let imm9 = (get(word, 16, 6) << 3) | get(word, 10, 3);
        return Some(SveInst::LdrZ {
            zt: zreg(get(word, 0, 5)),
            rn: xreg(get(word, 5, 5)),
            imm_vl: unsigned_to_signed(imm9, 9) as i16,
        });
    }
    // STR (vector).
    if word & 0xFFC0_E000 == 0xE580_4000 {
        let imm9 = (get(word, 16, 6) << 3) | get(word, 10, 3);
        return Some(SveInst::StrZ {
            zt: zreg(get(word, 0, 5)),
            rn: xreg(get(word, 5, 5)),
            imm_vl: unsigned_to_signed(imm9, 9) as i16,
        });
    }
    // FMLA (predicated, vectors).
    if word & 0xFF20_E000 == 0x6520_0000 {
        return Some(SveInst::FmlaSve {
            zd: zreg(get(word, 0, 5)),
            pg: preg(get(word, 10, 3)),
            zn: zreg(get(word, 5, 5)),
            zm: zreg(get(word, 16, 5)),
            elem: canonical(super::fields::elem_of(get(word, 22, 2))),
        });
    }
    // DUP (immediate).
    if word & 0xFF3F_E000 == 0x2538_C000 {
        return Some(SveInst::DupImm {
            zd: zreg(get(word, 0, 5)),
            elem: super::fields::elem_of(get(word, 22, 2)),
            imm: get(word, 5, 8) as u8 as i8,
        });
    }
    // ADDVL.
    if word & 0xFFE0_F800 == 0x0420_5000 {
        return Some(SveInst::AddVl {
            rd: xreg(get(word, 0, 5)),
            rn: xreg(get(word, 16, 5)),
            imm: unsigned_to_signed(get(word, 5, 6), 6) as i8,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::short::*;

    fn roundtrip(inst: SveInst) {
        let word = encode(&inst);
        let back = decode(word).unwrap_or_else(|| panic!("failed to decode {inst} (0x{word:08x})"));
        assert_eq!(back, inst, "round-trip mismatch for {inst} (0x{word:08x})");
    }

    #[test]
    fn roundtrip_predicates() {
        for elem in [
            ElementType::I8,
            ElementType::F16,
            ElementType::F32,
            ElementType::F64,
        ] {
            roundtrip(SveInst::Ptrue { pd: p(0), elem });
            roundtrip(SveInst::Ptrue { pd: p(15), elem });
            roundtrip(SveInst::PtrueCnt { pn: pn(8), elem });
            roundtrip(SveInst::PtrueCnt { pn: pn(15), elem });
            roundtrip(SveInst::Whilelt {
                pd: p(3),
                elem,
                rn: x(4),
                rm: x(5),
            });
            roundtrip(SveInst::WhileltCnt {
                pn: pn(9),
                elem,
                rn: x(1),
                rm: x(2),
                vl: 2,
            });
            roundtrip(SveInst::WhileltCnt {
                pn: pn(10),
                elem,
                rn: x(1),
                rm: x(2),
                vl: 4,
            });
        }
    }

    #[test]
    fn roundtrip_memory() {
        for elem in [
            ElementType::I8,
            ElementType::F16,
            ElementType::F32,
            ElementType::F64,
        ] {
            roundtrip(SveInst::Ld1 {
                zt: z(0),
                elem,
                pg: p(1),
                rn: x(0),
                imm_vl: 0,
            });
            roundtrip(SveInst::Ld1 {
                zt: z(31),
                elem,
                pg: p(7),
                rn: XReg::SP,
                imm_vl: -8,
            });
            roundtrip(SveInst::St1 {
                zt: z(5),
                elem,
                pg: p(3),
                rn: x(2),
                imm_vl: 7,
            });
        }
        roundtrip(SveInst::ld1w_multi(z(0), 4, pn(8), x(0), 0));
        roundtrip(SveInst::ld1w_multi(z(4), 2, pn(9), x(1), -3));
        roundtrip(SveInst::st1w_multi(z(0), 4, pn(10), x(3), 2));
        roundtrip(SveInst::st1w_multi(z(28), 2, pn(15), XReg::SP, 0));
        roundtrip(SveInst::LdrZ {
            zt: z(17),
            rn: x(9),
            imm_vl: -100,
        });
        roundtrip(SveInst::StrZ {
            zt: z(17),
            rn: XReg::SP,
            imm_vl: 255,
        });
    }

    #[test]
    fn roundtrip_dataproc() {
        roundtrip(SveInst::FmlaSve {
            zd: z(0),
            pg: p(0),
            zn: z(30),
            zm: z(31),
            elem: ElementType::F32,
        });
        roundtrip(SveInst::FmlaSve {
            zd: z(9),
            pg: p(7),
            zn: z(1),
            zm: z(2),
            elem: ElementType::F64,
        });
        roundtrip(SveInst::DupImm {
            zd: z(3),
            elem: ElementType::F32,
            imm: 0,
        });
        roundtrip(SveInst::DupImm {
            zd: z(3),
            elem: ElementType::I8,
            imm: -1,
        });
        roundtrip(SveInst::AddVl {
            rd: x(0),
            rn: x(0),
            imm: 4,
        });
        roundtrip(SveInst::AddVl {
            rd: XReg::SP,
            rn: XReg::SP,
            imm: -2,
        });
    }

    #[test]
    #[should_panic(expected = "governing predicate must be P0-P7")]
    fn governing_predicate_range_checked() {
        let _ = encode(&SveInst::ld1w(z(0), p(9), x(0), 0));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn imm_vl_range_checked() {
        let _ = encode(&SveInst::ld1w(z(0), p(0), x(0), 9));
    }

    #[test]
    fn foreign_words_rejected() {
        assert_eq!(decode(0xD65F03C0), None);
        assert_eq!(
            decode(0x4E3FCFC1),
            None,
            "Neon FMLA is not an SVE instruction"
        );
    }
}
