//! Encoding and decoding of SME / SME2 instructions.
//!
//! The outer-product and ZA load/store instructions follow the Arm ARM
//! field layout; the SME2 MOVA vector-group and multi-vector FMLA forms use
//! this crate's own field placement (documented per function) validated by
//! round-trip tests.

use super::fields::{get, put, size_of};
use crate::inst::sme::SmeInst;
use crate::regs::{PReg, TileSliceDir, XReg, ZReg, ZaTile};
use crate::types::ElementType;

const SMSTART: u32 = 0xD503_477F;
const SMSTART_ZA: u32 = 0xD503_457F;
const SMSTOP: u32 = 0xD503_467F;
const SMSTOP_ZA: u32 = 0xD503_447F;

fn xreg(enc: u32) -> XReg {
    if enc == 31 {
        XReg::SP
    } else {
        XReg::new(enc as u8)
    }
}

fn zreg(enc: u32) -> ZReg {
    ZReg::new(enc as u8)
}

fn preg(enc: u32) -> PReg {
    PReg::new(enc as u8)
}

fn check_mopa_operands(pn: PReg, pm: PReg) {
    assert!(
        pn.is_governing() && pm.is_governing(),
        "outer-product predicates must be P0-P7 (got {pn}, {pm})"
    );
}

/// Slice-index register field for MOVA / LDR ZA / STR ZA (W12–W15).
fn rs_field(rs: XReg) -> u32 {
    let idx = rs.index();
    assert!(
        (12..=15).contains(&idx),
        "ZA slice-index register must be W12-W15, got {rs}"
    );
    (idx - 12) as u32
}

/// Vector-select register field for SME2 ZA-vector instructions (W8–W11).
fn rv_field(rv: XReg) -> u32 {
    let idx = rv.index();
    assert!(
        (8..=11).contains(&idx),
        "ZA vector-select register must be W8-W11, got {rv}"
    );
    (idx - 8) as u32
}

fn count_log2(count: u8) -> u32 {
    match count {
        1 => 0,
        2 => 1,
        4 => 2,
        _ => panic!("MOVA vector-group count must be 1, 2 or 4, got {count}"),
    }
}

/// Encode an SME instruction.
///
/// # Panics
/// Panics if an operand is out of the encodable range (tile index,
/// predicate above P7, slice-index register outside W12–W15, …).
pub fn encode(inst: &SmeInst) -> u32 {
    match *inst {
        SmeInst::Smstart { za_only } => {
            if za_only {
                SMSTART_ZA
            } else {
                SMSTART
            }
        }
        SmeInst::Smstop { za_only } => {
            if za_only {
                SMSTOP_ZA
            } else {
                SMSTOP
            }
        }
        SmeInst::Fmopa {
            tile,
            elem,
            pn,
            pm,
            zn,
            zm,
        } => {
            check_mopa_operands(pn, pm);
            match elem {
                ElementType::F32 => {
                    assert!(tile < 4, "FP32 FMOPA tile must be 0..4");
                    0x8080_0000
                        | put(zm.enc(), 16, 5)
                        | put(pm.enc(), 13, 3)
                        | put(pn.enc(), 10, 3)
                        | put(zn.enc(), 5, 5)
                        | put(tile as u32, 0, 2)
                }
                ElementType::F64 => {
                    assert!(tile < 8, "FP64 FMOPA tile must be 0..8");
                    0x80C0_0000
                        | put(zm.enc(), 16, 5)
                        | put(pm.enc(), 13, 3)
                        | put(pn.enc(), 10, 3)
                        | put(zn.enc(), 5, 5)
                        | put(tile as u32, 0, 3)
                }
                other => panic!("unsupported encoding: non-widening FMOPA with {other} elements"),
            }
        }
        SmeInst::FmopaWide {
            tile,
            from,
            pn,
            pm,
            zn,
            zm,
        } => {
            check_mopa_operands(pn, pm);
            assert!(tile < 4, "widening FMOPA tile must be 0..4");
            let base = match from {
                ElementType::BF16 => 0x8100_0000,
                ElementType::F16 => 0x8180_0000,
                other => panic!("unsupported encoding: widening FMOPA from {other}"),
            };
            base | put(zm.enc(), 16, 5)
                | put(pm.enc(), 13, 3)
                | put(pn.enc(), 10, 3)
                | put(zn.enc(), 5, 5)
                | put(tile as u32, 0, 2)
        }
        SmeInst::Smopa {
            tile,
            from,
            pn,
            pm,
            zn,
            zm,
        } => {
            check_mopa_operands(pn, pm);
            assert!(tile < 4, "SMOPA tile must be 0..4");
            let base = match from {
                ElementType::I8 => 0xA080_0000,
                ElementType::I16 => 0xA0C0_0000,
                other => panic!("unsupported encoding: SMOPA from {other}"),
            };
            base | put(zm.enc(), 16, 5)
                | put(pm.enc(), 13, 3)
                | put(pn.enc(), 10, 3)
                | put(zn.enc(), 5, 5)
                | put(tile as u32, 0, 2)
        }
        SmeInst::MovaToTile {
            tile,
            dir,
            rs,
            offset,
            zt,
            count,
        } => encode_mova(0xC080_0000, tile, dir, rs, offset, zt, count),
        SmeInst::MovaFromTile {
            tile,
            dir,
            rs,
            offset,
            zt,
            count,
        } => encode_mova(0xC0A0_0000, tile, dir, rs, offset, zt, count),
        SmeInst::LdrZa { rs, offset, rn } => {
            assert!(offset < 16, "LDR ZA offset must be 0..16");
            0xE100_0000 | put(rs_field(rs), 13, 2) | put(rn.enc(), 5, 5) | put(offset as u32, 0, 4)
        }
        SmeInst::StrZa { rs, offset, rn } => {
            assert!(offset < 16, "STR ZA offset must be 0..16");
            0xE120_0000 | put(rs_field(rs), 13, 2) | put(rn.enc(), 5, 5) | put(offset as u32, 0, 4)
        }
        SmeInst::ZeroZa { mask } => 0xC008_0000 | mask as u32,
        SmeInst::FmlaZaVectors {
            elem,
            vgx,
            rv,
            offset,
            zn,
            zm,
        } => {
            assert!(vgx == 2 || vgx == 4, "vector-group size must be 2 or 4");
            assert!(offset < 8, "ZA vector offset must be 0..8");
            // Reproduction-specific field placement:
            // [16:20]=zm [11:12]=size [10]=vgx4 [8:9]=rv [5:7]=offset [0:4]=zn
            0xC120_0000
                | put(zm.enc(), 16, 5)
                | put(size_of(elem), 11, 2)
                | put((vgx == 4) as u32, 10, 1)
                | put(rv_field(rv), 8, 2)
                | put(offset as u32, 5, 3)
                | zn.enc()
        }
    }
}

/// Shared MOVA (tile ↔ vector group) encoder.
///
/// Reproduction-specific field placement:
/// `[23]=1 [21]=direction-of-copy [17:18]=size [15:16]=count [12:14]=tile
/// [11]=h/v [9:10]=rs [5:8]=offset [0:4]=zt`.
fn encode_mova(
    base: u32,
    tile: ZaTile,
    dir: TileSliceDir,
    rs: XReg,
    offset: u8,
    zt: ZReg,
    count: u8,
) -> u32 {
    assert!(offset < 16, "MOVA slice offset must be 0..16");
    base | put(size_of(tile.elem), 17, 2)
        | put(count_log2(count), 15, 2)
        | put(tile.index as u32, 12, 3)
        | put((dir == TileSliceDir::Vertical) as u32, 11, 1)
        | put(rs_field(rs), 9, 2)
        | put(offset as u32, 5, 4)
        | zt.enc()
}

fn decode_mova(word: u32) -> Option<(ZaTile, TileSliceDir, XReg, u8, ZReg, u8)> {
    let elem = super::fields::elem_of(get(word, 17, 2));
    // Out-of-range tile indices (the 3-bit field can name tiles the element
    // type does not have) and the count encoding the encoder never emits
    // (`log2 = 3`, i.e. eight vectors) are unknown words, not panics.
    let tile = ZaTile::try_new(get(word, 12, 3) as u8, canonical_tile_elem(elem))?;
    let count_log2 = get(word, 15, 2);
    if count_log2 == 3 {
        return None;
    }
    let dir = if get(word, 11, 1) == 1 {
        TileSliceDir::Vertical
    } else {
        TileSliceDir::Horizontal
    };
    let rs = XReg::new((get(word, 9, 2) + 12) as u8);
    let offset = get(word, 5, 4) as u8;
    let zt = zreg(get(word, 0, 5));
    let count = 1u8 << count_log2;
    Some((tile, dir, rs, offset, zt, count))
}

/// Tiles are canonicalised to floating-point element types (F16/F32/F64) or
/// I8 by the size-field decoder, matching [`super::fields::elem_of`].
fn canonical_tile_elem(elem: ElementType) -> ElementType {
    elem
}

/// Decode an SME instruction, returning `None` if the word is not in the
/// modelled SME subset.
pub fn decode(word: u32) -> Option<SmeInst> {
    match word {
        SMSTART => return Some(SmeInst::Smstart { za_only: false }),
        SMSTART_ZA => return Some(SmeInst::Smstart { za_only: true }),
        SMSTOP => return Some(SmeInst::Smstop { za_only: false }),
        SMSTOP_ZA => return Some(SmeInst::Smstop { za_only: true }),
        _ => {}
    }
    let zm = || zreg(get(word, 16, 5));
    let pm = || preg(get(word, 13, 3));
    let pn = || preg(get(word, 10, 3));
    let zn = || zreg(get(word, 5, 5));

    // FMOPA (non-widening), FP32.
    if word & 0xFFE0_001C == 0x8080_0000 {
        return Some(SmeInst::Fmopa {
            tile: get(word, 0, 2) as u8,
            elem: ElementType::F32,
            pn: pn(),
            pm: pm(),
            zn: zn(),
            zm: zm(),
        });
    }
    // FMOPA (non-widening), FP64.
    if word & 0xFFE0_0018 == 0x80C0_0000 {
        return Some(SmeInst::Fmopa {
            tile: get(word, 0, 3) as u8,
            elem: ElementType::F64,
            pn: pn(),
            pm: pm(),
            zn: zn(),
            zm: zm(),
        });
    }
    // BFMOPA / FMOPA (widening).
    if word & 0xFF60_001C == 0x8100_0000 {
        let from = if get(word, 23, 1) == 1 {
            ElementType::F16
        } else {
            ElementType::BF16
        };
        return Some(SmeInst::FmopaWide {
            tile: get(word, 0, 2) as u8,
            from,
            pn: pn(),
            pm: pm(),
            zn: zn(),
            zm: zm(),
        });
    }
    // SMOPA.
    if word & 0xFF80_001C == 0xA080_0000 {
        let from = if get(word, 22, 1) == 1 {
            ElementType::I16
        } else {
            ElementType::I8
        };
        return Some(SmeInst::Smopa {
            tile: get(word, 0, 2) as u8,
            from,
            pn: pn(),
            pm: pm(),
            zn: zn(),
            zm: zm(),
        });
    }
    // MOVA (vector group to tile / tile to vector group).
    if word & 0xFFF8_0000 == 0xC080_0000 {
        let (tile, dir, rs, offset, zt, count) = decode_mova(word)?;
        return Some(SmeInst::MovaToTile {
            tile,
            dir,
            rs,
            offset,
            zt,
            count,
        });
    }
    if word & 0xFFF8_0000 == 0xC0A0_0000 {
        let (tile, dir, rs, offset, zt, count) = decode_mova(word)?;
        return Some(SmeInst::MovaFromTile {
            tile,
            dir,
            rs,
            offset,
            zt,
            count,
        });
    }
    // LDR / STR (ZA array vector).
    if word & 0xFFE0_8010 == 0xE100_0000 {
        return Some(SmeInst::LdrZa {
            rs: XReg::new((get(word, 13, 2) + 12) as u8),
            offset: get(word, 0, 4) as u8,
            rn: xreg(get(word, 5, 5)),
        });
    }
    if word & 0xFFE0_8010 == 0xE120_0000 {
        return Some(SmeInst::StrZa {
            rs: XReg::new((get(word, 13, 2) + 12) as u8),
            offset: get(word, 0, 4) as u8,
            rn: xreg(get(word, 5, 5)),
        });
    }
    // ZERO { mask }.
    if word & 0xFFFF_FF00 == 0xC008_0000 {
        return Some(SmeInst::ZeroZa {
            mask: get(word, 0, 8) as u8,
        });
    }
    // FMLA (multiple vectors and single vector).
    if word & 0xFFE0_0000 == 0xC120_0000 {
        return Some(SmeInst::FmlaZaVectors {
            elem: super::fields::elem_of(get(word, 11, 2)),
            vgx: if get(word, 10, 1) == 1 { 4 } else { 2 },
            rv: XReg::new((get(word, 8, 2) + 8) as u8),
            offset: get(word, 5, 3) as u8,
            zn: zreg(get(word, 0, 5)),
            zm: zm(),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::short::*;

    fn roundtrip(inst: SmeInst) {
        let word = encode(&inst);
        let back = decode(word).unwrap_or_else(|| panic!("failed to decode {inst} (0x{word:08x})"));
        assert_eq!(back, inst, "round-trip mismatch for {inst} (0x{word:08x})");
    }

    #[test]
    fn roundtrip_mode_control() {
        roundtrip(SmeInst::Smstart { za_only: false });
        roundtrip(SmeInst::Smstart { za_only: true });
        roundtrip(SmeInst::Smstop { za_only: false });
        roundtrip(SmeInst::Smstop { za_only: true });
    }

    #[test]
    fn roundtrip_outer_products() {
        for tile in 0..4 {
            roundtrip(SmeInst::fmopa_f32(
                tile,
                p(0),
                p(1),
                z(tile * 2),
                z(tile * 2 + 1),
            ));
        }
        for tile in 0..8 {
            roundtrip(SmeInst::fmopa_f64(tile, p(2), p(3), z(30), z(31)));
        }
        roundtrip(SmeInst::bfmopa(2, p(0), p(1), z(4), z(5)));
        roundtrip(SmeInst::FmopaWide {
            tile: 1,
            from: ElementType::F16,
            pn: p(0),
            pm: p(1),
            zn: z(6),
            zm: z(7),
        });
        roundtrip(SmeInst::smopa_i8(3, p(4), p(5), z(8), z(9)));
        roundtrip(SmeInst::Smopa {
            tile: 0,
            from: ElementType::I16,
            pn: p(6),
            pm: p(7),
            zn: z(10),
            zm: z(11),
        });
    }

    #[test]
    fn roundtrip_moves_and_memory() {
        for count in [1u8, 2, 4] {
            for dir in [TileSliceDir::Horizontal, TileSliceDir::Vertical] {
                roundtrip(SmeInst::MovaToTile {
                    tile: ZaTile::s(0),
                    dir,
                    rs: x(12),
                    offset: 4,
                    zt: z(0),
                    count,
                });
                roundtrip(SmeInst::MovaFromTile {
                    tile: ZaTile::s(3),
                    dir,
                    rs: x(15),
                    offset: 12,
                    zt: z(28),
                    count,
                });
            }
        }
        roundtrip(SmeInst::MovaToTile {
            tile: ZaTile::d(7),
            dir: TileSliceDir::Horizontal,
            rs: x(13),
            offset: 0,
            zt: z(16),
            count: 4,
        });
        for offset in 0..16 {
            roundtrip(SmeInst::LdrZa {
                rs: x(12),
                offset,
                rn: x(0),
            });
            roundtrip(SmeInst::StrZa {
                rs: x(14),
                offset,
                rn: XReg::SP,
            });
        }
        roundtrip(SmeInst::ZeroZa { mask: 0xff });
        roundtrip(SmeInst::ZeroZa { mask: 0x11 });
    }

    #[test]
    fn roundtrip_multi_vector_fmla() {
        for vgx in [2u8, 4] {
            for offset in 0..8 {
                roundtrip(SmeInst::FmlaZaVectors {
                    elem: ElementType::F32,
                    vgx,
                    rv: x(8),
                    offset,
                    zn: z(0),
                    zm: z(4),
                });
            }
        }
        roundtrip(SmeInst::FmlaZaVectors {
            elem: ElementType::F64,
            vgx: 4,
            rv: x(11),
            offset: 7,
            zn: z(24),
            zm: z(15),
        });
    }

    #[test]
    #[should_panic(expected = "predicates must be P0-P7")]
    fn predicate_range_checked() {
        let _ = encode(&SmeInst::Fmopa {
            tile: 0,
            elem: ElementType::F32,
            pn: p(9),
            pm: p(1),
            zn: z(0),
            zm: z(1),
        });
    }

    #[test]
    #[should_panic(expected = "slice-index register must be W12-W15")]
    fn slice_register_checked() {
        let _ = encode(&SmeInst::LdrZa {
            rs: x(3),
            offset: 0,
            rn: x(0),
        });
    }

    #[test]
    fn foreign_words_rejected() {
        assert_eq!(decode(0xD65F03C0), None);
        assert_eq!(decode(0x4E3FCFC1), None);
        assert_eq!(
            decode(0xA540A000),
            None,
            "SVE LD1W is not an SME instruction"
        );
    }
}
