//! Lowering of the typed instruction representation to 32-bit AArch64
//! machine words.
//!
//! The generated GEMM kernels are genuine machine-code buffers: every
//! instruction the generator emits has a 32-bit encoding produced here and
//! can be decoded back by [`crate::decode`]. For the long-established parts
//! of the ISA (A64 base, ASIMD, classic SVE loads/stores) the encodings
//! follow the Arm Architecture Reference Manual field layouts. For the very
//! recent SME2 / SVE2.1 instructions (multi-vector loads, MOVA vector
//! groups, predicate-as-counter forms) the field *placement* is this
//! crate's own, documented in each function; no AArch64 assembler is
//! available in the reproduction environment to cross-check the exact
//! opcode constants, so correctness is defined by the encode/decode
//! round-trip property that the test-suite verifies exhaustively.
//!
//! Panics: encoding an operand combination that the generator never emits
//! (for example a Neon by-element FMLA with a byte arrangement) panics with
//! an `unsupported encoding` message rather than silently producing a wrong
//! word.

pub mod neon;
pub mod scalar;
pub mod sme;
pub mod sve;

use crate::inst::Inst;

/// Encode one instruction to its 32-bit machine word.
pub fn encode(inst: &Inst) -> u32 {
    match inst {
        Inst::Scalar(i) => scalar::encode(i),
        Inst::Neon(i) => neon::encode(i),
        Inst::Sve(i) => sve::encode(i),
        Inst::Sme(i) => sme::encode(i),
    }
}

/// Helpers shared by the per-class encoders.
pub(crate) mod fields {
    use crate::types::ElementType;

    /// Extract a bit-field `[lo, lo+len)` from a word.
    pub fn get(word: u32, lo: u32, len: u32) -> u32 {
        (word >> lo) & ((1 << len) - 1)
    }

    /// Place `value` into bit-field `[lo, lo+len)`, asserting it fits.
    pub fn put(value: u32, lo: u32, len: u32) -> u32 {
        assert!(
            value < (1 << len),
            "field value {value} does not fit in {len} bits"
        );
        value << lo
    }

    /// SVE size field (bits 22–23 in most SVE encodings): 0=b, 1=h, 2=s, 3=d.
    pub fn size_of(elem: ElementType) -> u32 {
        match elem.bits() {
            8 => 0,
            16 => 1,
            32 => 2,
            _ => 3,
        }
    }

    /// Inverse of [`size_of`], canonicalised to the floating-point type for
    /// 16/32/64-bit sizes and `I8` for bytes.
    pub fn elem_of(size: u32) -> ElementType {
        match size & 3 {
            0 => ElementType::I8,
            1 => ElementType::F16,
            2 => ElementType::F32,
            _ => ElementType::F64,
        }
    }

    /// Two's-complement encode a signed value into `len` bits.
    pub fn signed(value: i64, len: u32) -> u32 {
        let min = -(1i64 << (len - 1));
        let max = (1i64 << (len - 1)) - 1;
        assert!(
            (min..=max).contains(&value),
            "signed value {value} does not fit in {len} bits"
        );
        (value as u32) & ((1u32 << len) - 1)
    }

    /// Two's-complement decode a `len`-bit field.
    pub fn unsigned_to_signed(value: u32, len: u32) -> i64 {
        let sign_bit = 1u32 << (len - 1);
        if value & sign_bit != 0 {
            value as i64 - (1i64 << len)
        } else {
            value as i64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fields::*;
    use crate::types::ElementType;

    #[test]
    fn field_helpers_roundtrip() {
        let w = put(0b1011, 5, 4) | put(3, 0, 2);
        assert_eq!(get(w, 5, 4), 0b1011);
        assert_eq!(get(w, 0, 2), 3);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn field_overflow_panics() {
        let _ = put(16, 0, 4);
    }

    #[test]
    fn size_mapping() {
        assert_eq!(size_of(ElementType::I8), 0);
        assert_eq!(size_of(ElementType::F16), 1);
        assert_eq!(size_of(ElementType::BF16), 1);
        assert_eq!(size_of(ElementType::F32), 2);
        assert_eq!(size_of(ElementType::I32), 2);
        assert_eq!(size_of(ElementType::F64), 3);
        assert_eq!(elem_of(2), ElementType::F32);
        assert_eq!(elem_of(3), ElementType::F64);
        assert_eq!(elem_of(0), ElementType::I8);
    }

    #[test]
    fn signed_fields() {
        assert_eq!(signed(-1, 4), 0xf);
        assert_eq!(signed(-8, 4), 0x8);
        assert_eq!(signed(7, 4), 0x7);
        assert_eq!(unsigned_to_signed(0xf, 4), -1);
        assert_eq!(unsigned_to_signed(0x8, 4), -8);
        assert_eq!(unsigned_to_signed(0x7, 4), 7);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn signed_overflow_panics() {
        let _ = signed(8, 4);
    }
}
