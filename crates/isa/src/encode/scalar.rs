//! Encoding and decoding of A64 base instructions.

use super::fields::{get, put, signed, unsigned_to_signed};
use crate::inst::scalar::{BranchTarget, ScalarInst, ShiftOp};
use crate::regs::XReg;
use crate::types::Cond;

const NOP: u32 = 0xD503_201F;
const RET: u32 = 0xD65F_03C0;

fn xreg(enc: u32, allow_sp: bool) -> XReg {
    match enc {
        31 if allow_sp => XReg::SP,
        31 => XReg::XZR,
        n => XReg::new(n as u8),
    }
}

/// Encode a scalar instruction.
///
/// # Panics
/// Panics if an operand is out of the encodable range (e.g. a branch offset
/// that does not fit in the immediate field).
pub fn encode(inst: &ScalarInst) -> u32 {
    match *inst {
        ScalarInst::MovZ { rd, imm16, hw } => {
            0xD280_0000 | put(hw as u32, 21, 2) | put(imm16 as u32, 5, 16) | rd.enc()
        }
        ScalarInst::MovK { rd, imm16, hw } => {
            0xF280_0000 | put(hw as u32, 21, 2) | put(imm16 as u32, 5, 16) | rd.enc()
        }
        ScalarInst::MovReg { rd, rn } => 0xAA00_03E0 | put(rn.enc(), 16, 5) | rd.enc(),
        ScalarInst::AddImm {
            rd,
            rn,
            imm12,
            shift12,
        } => {
            0x9100_0000
                | put(shift12 as u32, 22, 1)
                | put(imm12 as u32, 10, 12)
                | put(rn.enc(), 5, 5)
                | rd.enc()
        }
        ScalarInst::SubImm {
            rd,
            rn,
            imm12,
            shift12,
        } => {
            0xD100_0000
                | put(shift12 as u32, 22, 1)
                | put(imm12 as u32, 10, 12)
                | put(rn.enc(), 5, 5)
                | rd.enc()
        }
        ScalarInst::SubsImm { rd, rn, imm12 } => {
            0xF100_0000 | put(imm12 as u32, 10, 12) | put(rn.enc(), 5, 5) | rd.enc()
        }
        ScalarInst::AddReg { rd, rn, rm, shift } => {
            let amount = shift.map(|s| s.amount() as u32).unwrap_or(0);
            0x8B00_0000 | put(rm.enc(), 16, 5) | put(amount, 10, 6) | put(rn.enc(), 5, 5) | rd.enc()
        }
        ScalarInst::SubReg { rd, rn, rm, shift } => {
            let amount = shift.map(|s| s.amount() as u32).unwrap_or(0);
            0xCB00_0000 | put(rm.enc(), 16, 5) | put(amount, 10, 6) | put(rn.enc(), 5, 5) | rd.enc()
        }
        ScalarInst::Madd { rd, rn, rm, ra } => {
            0x9B00_0000
                | put(rm.enc(), 16, 5)
                | put(ra.enc(), 10, 5)
                | put(rn.enc(), 5, 5)
                | rd.enc()
        }
        ScalarInst::LslImm { rd, rn, shift } => {
            assert!(shift < 64, "lsl shift out of range: {shift}");
            let immr = (64 - shift as u32) % 64;
            let imms = 63 - shift as u32;
            0xD340_0000 | put(immr, 16, 6) | put(imms, 10, 6) | put(rn.enc(), 5, 5) | rd.enc()
        }
        ScalarInst::CmpReg { rn, rm } => 0xEB00_001F | put(rm.enc(), 16, 5) | put(rn.enc(), 5, 5),
        ScalarInst::CmpImm { rn, imm12 } => {
            0xF100_001F | put(imm12 as u32, 10, 12) | put(rn.enc(), 5, 5)
        }
        ScalarInst::Cbnz { rn, target } => {
            0xB500_0000 | put(signed(target.offset() as i64, 19), 5, 19) | rn.enc()
        }
        ScalarInst::Cbz { rn, target } => {
            0xB400_0000 | put(signed(target.offset() as i64, 19), 5, 19) | rn.enc()
        }
        ScalarInst::B { target } => 0x1400_0000 | signed(target.offset() as i64, 26),
        ScalarInst::BCond { cond, target } => {
            0x5400_0000 | put(signed(target.offset() as i64, 19), 5, 19) | cond.code()
        }
        ScalarInst::Nop => NOP,
        ScalarInst::Ret => RET,
    }
}

/// Decode a scalar instruction, returning `None` if the word is not in the
/// modelled scalar subset.
pub fn decode(word: u32) -> Option<ScalarInst> {
    if word == NOP {
        return Some(ScalarInst::Nop);
    }
    if word == RET {
        return Some(ScalarInst::Ret);
    }
    let top8 = word >> 24;
    let rd = || get(word, 0, 5);
    let rn = || get(word, 5, 5);
    let rm = || get(word, 16, 5);
    match top8 {
        0xD2 if get(word, 23, 1) == 1 => Some(ScalarInst::MovZ {
            rd: xreg(rd(), false),
            imm16: get(word, 5, 16) as u16,
            hw: get(word, 21, 2) as u8,
        }),
        0xF2 if get(word, 23, 1) == 1 => Some(ScalarInst::MovK {
            rd: xreg(rd(), false),
            imm16: get(word, 5, 16) as u16,
            hw: get(word, 21, 2) as u8,
        }),
        0xAA if word & 0x00E0_FFE0 == 0x0000_03E0 => Some(ScalarInst::MovReg {
            rd: xreg(rd(), false),
            rn: xreg(rm(), false),
        }),
        0x91 => Some(ScalarInst::AddImm {
            rd: xreg(rd(), true),
            rn: xreg(rn(), true),
            imm12: get(word, 10, 12) as u16,
            shift12: get(word, 22, 1) == 1,
        }),
        0xD1 => Some(ScalarInst::SubImm {
            rd: xreg(rd(), true),
            rn: xreg(rn(), true),
            imm12: get(word, 10, 12) as u16,
            shift12: get(word, 22, 1) == 1,
        }),
        0xF1 if get(word, 22, 1) == 0 => {
            if rd() == 31 {
                Some(ScalarInst::CmpImm {
                    rn: xreg(rn(), true),
                    imm12: get(word, 10, 12) as u16,
                })
            } else {
                Some(ScalarInst::SubsImm {
                    rd: xreg(rd(), false),
                    rn: xreg(rn(), true),
                    imm12: get(word, 10, 12) as u16,
                })
            }
        }
        0x8B if get(word, 21, 3) == 0 => Some(ScalarInst::AddReg {
            rd: xreg(rd(), false),
            rn: xreg(rn(), false),
            rm: xreg(rm(), false),
            shift: match get(word, 10, 6) {
                0 => None,
                n => Some(ShiftOp::Lsl(n as u8)),
            },
        }),
        0xCB if get(word, 21, 3) == 0 => Some(ScalarInst::SubReg {
            rd: xreg(rd(), false),
            rn: xreg(rn(), false),
            rm: xreg(rm(), false),
            shift: match get(word, 10, 6) {
                0 => None,
                n => Some(ShiftOp::Lsl(n as u8)),
            },
        }),
        0x9B if get(word, 15, 1) == 0 && get(word, 21, 3) == 0 => Some(ScalarInst::Madd {
            rd: xreg(rd(), false),
            rn: xreg(rn(), false),
            rm: xreg(rm(), false),
            ra: xreg(get(word, 10, 5), false),
        }),
        0xD3 if get(word, 22, 2) == 1 => {
            let imms = get(word, 10, 6);
            let shift = 63 - imms;
            Some(ScalarInst::LslImm {
                rd: xreg(rd(), false),
                rn: xreg(rn(), false),
                shift: shift as u8,
            })
        }
        0xEB if rd() == 31 && get(word, 10, 6) == 0 && get(word, 21, 3) == 0 => {
            Some(ScalarInst::CmpReg {
                rn: xreg(rn(), false),
                rm: xreg(rm(), false),
            })
        }
        0xB5 => Some(ScalarInst::Cbnz {
            rn: xreg(rd(), false),
            target: BranchTarget::Offset(unsigned_to_signed(get(word, 5, 19), 19) as i32),
        }),
        0xB4 => Some(ScalarInst::Cbz {
            rn: xreg(rd(), false),
            target: BranchTarget::Offset(unsigned_to_signed(get(word, 5, 19), 19) as i32),
        }),
        0x14..=0x17 => Some(ScalarInst::B {
            target: BranchTarget::Offset(unsigned_to_signed(get(word, 0, 26), 26) as i32),
        }),
        0x54 if get(word, 4, 1) == 0 => {
            Cond::from_code(get(word, 0, 4)).map(|cond| ScalarInst::BCond {
                cond,
                target: BranchTarget::Offset(unsigned_to_signed(get(word, 5, 19), 19) as i32),
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::short::*;

    fn roundtrip(inst: ScalarInst) {
        let word = encode(&inst);
        let back = decode(word).unwrap_or_else(|| panic!("failed to decode {inst} (0x{word:08x})"));
        assert_eq!(back, inst, "round-trip mismatch for {inst} (0x{word:08x})");
    }

    #[test]
    fn known_encodings() {
        // `ret` and `nop` have well-known fixed encodings.
        assert_eq!(encode(&ScalarInst::Ret), 0xD65F03C0);
        assert_eq!(encode(&ScalarInst::Nop), 0xD503201F);
        // `mov x0, #240` == movz x0, #240.
        assert_eq!(encode(&ScalarInst::mov_imm16(x(0), 240)), 0xD2801E00);
        // `sub x0, x0, #1`.
        assert_eq!(
            encode(&ScalarInst::SubImm {
                rd: x(0),
                rn: x(0),
                imm12: 1,
                shift12: false
            }),
            0xD1000400
        );
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(ScalarInst::MovZ {
            rd: x(3),
            imm16: 0xbeef,
            hw: 2,
        });
        roundtrip(ScalarInst::MovK {
            rd: x(30),
            imm16: 1,
            hw: 3,
        });
        roundtrip(ScalarInst::MovReg { rd: x(1), rn: x(2) });
        roundtrip(ScalarInst::AddImm {
            rd: x(0),
            rn: x(1),
            imm12: 4095,
            shift12: true,
        });
        roundtrip(ScalarInst::AddImm {
            rd: XReg::SP,
            rn: XReg::SP,
            imm12: 64,
            shift12: false,
        });
        roundtrip(ScalarInst::SubImm {
            rd: XReg::SP,
            rn: XReg::SP,
            imm12: 128,
            shift12: false,
        });
        roundtrip(ScalarInst::SubsImm {
            rd: x(8),
            rn: x(8),
            imm12: 1,
        });
        roundtrip(ScalarInst::AddReg {
            rd: x(0),
            rn: x(0),
            rm: x(9),
            shift: None,
        });
        roundtrip(ScalarInst::AddReg {
            rd: x(0),
            rn: x(0),
            rm: x(9),
            shift: Some(ShiftOp::Lsl(2)),
        });
        roundtrip(ScalarInst::SubReg {
            rd: x(5),
            rn: x(6),
            rm: x(7),
            shift: None,
        });
        roundtrip(ScalarInst::Madd {
            rd: x(0),
            rn: x(1),
            rm: x(2),
            ra: x(3),
        });
        roundtrip(ScalarInst::LslImm {
            rd: x(4),
            rn: x(5),
            shift: 2,
        });
        roundtrip(ScalarInst::LslImm {
            rd: x(4),
            rn: x(5),
            shift: 63,
        });
        roundtrip(ScalarInst::CmpReg { rn: x(1), rm: x(2) });
        roundtrip(ScalarInst::CmpImm {
            rn: x(1),
            imm12: 100,
        });
        roundtrip(ScalarInst::Cbnz {
            rn: x(0),
            target: BranchTarget::Offset(-33),
        });
        roundtrip(ScalarInst::Cbz {
            rn: x(2),
            target: BranchTarget::Offset(12),
        });
        roundtrip(ScalarInst::B {
            target: BranchTarget::Offset(-1000),
        });
        roundtrip(ScalarInst::BCond {
            cond: Cond::Ne,
            target: BranchTarget::Offset(5),
        });
        roundtrip(ScalarInst::Nop);
        roundtrip(ScalarInst::Ret);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn branch_offset_range_checked() {
        let _ = encode(&ScalarInst::Cbnz {
            rn: x(0),
            target: BranchTarget::Offset(1 << 20),
        });
    }

    #[test]
    fn unknown_word_decodes_to_none() {
        assert_eq!(decode(0xFFFF_FFFF), None);
        assert_eq!(decode(0x0000_0000), None);
    }
}
