//! Encoding and decoding of ASIMD (Neon) instructions.

use super::fields::{get, put, signed, unsigned_to_signed};
use crate::inst::neon::NeonInst;
use crate::regs::{VReg, XReg};
use crate::types::NeonArrangement;

fn xreg(enc: u32) -> XReg {
    if enc == 31 {
        XReg::SP
    } else {
        XReg::new(enc as u8)
    }
}

fn vreg(enc: u32) -> VReg {
    VReg::new(enc as u8)
}

/// Encode a Neon instruction.
///
/// # Panics
/// Panics on operand combinations the generator never emits (e.g. byte
/// arrangements of the by-element FMLA) or on out-of-range offsets.
pub fn encode(inst: &NeonInst) -> u32 {
    match *inst {
        NeonInst::FmlaVec {
            vd,
            vn,
            vm,
            arrangement,
        } => {
            let base = match arrangement {
                NeonArrangement::S4 => 0x4E20_CC00,
                NeonArrangement::D2 => 0x4E60_CC00,
                NeonArrangement::H8 => 0x4E40_0C00,
                NeonArrangement::B16 => panic!("unsupported encoding: fmla vector with byte lanes"),
            };
            base | put(vm.enc(), 16, 5) | put(vn.enc(), 5, 5) | vd.enc()
        }
        NeonInst::FmlaElem {
            vd,
            vn,
            vm,
            index,
            arrangement,
        } => match arrangement {
            NeonArrangement::S4 => {
                assert!(index < 4, "fmla by element: S lane index out of range");
                0x4F80_1000
                    | put((index & 1) as u32, 21, 1)
                    | put(((index >> 1) & 1) as u32, 11, 1)
                    | put(vm.enc(), 16, 5)
                    | put(vn.enc(), 5, 5)
                    | vd.enc()
            }
            NeonArrangement::D2 => {
                assert!(index < 2, "fmla by element: D lane index out of range");
                0x4FC0_1000
                    | put(index as u32, 11, 1)
                    | put(vm.enc(), 16, 5)
                    | put(vn.enc(), 5, 5)
                    | vd.enc()
            }
            _ => panic!("unsupported encoding: fmla by element with {arrangement} arrangement"),
        },
        NeonInst::Bfmmla { vd, vn, vm } => {
            0x6E40_EC00 | put(vm.enc(), 16, 5) | put(vn.enc(), 5, 5) | vd.enc()
        }
        NeonInst::LdrQ { vt, rn, imm } => {
            assert!(
                imm % 16 == 0 && imm / 16 < 4096,
                "ldr q offset out of range: {imm}"
            );
            0x3DC0_0000 | put(imm / 16, 10, 12) | put(rn.enc(), 5, 5) | vt.enc()
        }
        NeonInst::StrQ { vt, rn, imm } => {
            assert!(
                imm % 16 == 0 && imm / 16 < 4096,
                "str q offset out of range: {imm}"
            );
            0x3D80_0000 | put(imm / 16, 10, 12) | put(rn.enc(), 5, 5) | vt.enc()
        }
        NeonInst::LdrD { vt, rn, imm } => {
            assert!(
                imm % 8 == 0 && imm / 8 < 4096,
                "ldr d offset out of range: {imm}"
            );
            0xFD40_0000 | put(imm / 8, 10, 12) | put(rn.enc(), 5, 5) | vt.enc()
        }
        NeonInst::StrD { vt, rn, imm } => {
            assert!(
                imm % 8 == 0 && imm / 8 < 4096,
                "str d offset out of range: {imm}"
            );
            0xFD00_0000 | put(imm / 8, 10, 12) | put(rn.enc(), 5, 5) | vt.enc()
        }
        NeonInst::LdrS { vt, rn, imm } => {
            assert!(
                imm % 4 == 0 && imm / 4 < 4096,
                "ldr s offset out of range: {imm}"
            );
            0xBD40_0000 | put(imm / 4, 10, 12) | put(rn.enc(), 5, 5) | vt.enc()
        }
        NeonInst::StrS { vt, rn, imm } => {
            assert!(
                imm % 4 == 0 && imm / 4 < 4096,
                "str s offset out of range: {imm}"
            );
            0xBD00_0000 | put(imm / 4, 10, 12) | put(rn.enc(), 5, 5) | vt.enc()
        }
        NeonInst::InsElemD { vd, vn, dst, src } => {
            assert!(dst < 2 && src < 2, "ins: D lane index out of range");
            let imm5 = ((dst as u32) << 4) | 0b1000;
            let imm4 = (src as u32) << 3;
            0x6E00_0400 | put(imm5, 16, 5) | put(imm4, 11, 4) | put(vn.enc(), 5, 5) | vd.enc()
        }
        NeonInst::LdpQ { vt1, vt2, rn, imm } => {
            assert!(imm % 16 == 0, "ldp q offset must be 16-byte aligned");
            0xAD40_0000
                | put(signed((imm / 16) as i64, 7), 15, 7)
                | put(vt2.enc(), 10, 5)
                | put(rn.enc(), 5, 5)
                | vt1.enc()
        }
        NeonInst::StpQ { vt1, vt2, rn, imm } => {
            assert!(imm % 16 == 0, "stp q offset must be 16-byte aligned");
            0xAD00_0000
                | put(signed((imm / 16) as i64, 7), 15, 7)
                | put(vt2.enc(), 10, 5)
                | put(rn.enc(), 5, 5)
                | vt1.enc()
        }
        NeonInst::DupElem {
            vd,
            vn,
            index,
            arrangement,
        } => {
            let imm5 = match arrangement {
                NeonArrangement::S4 => {
                    assert!(index < 4, "dup: S lane index out of range");
                    ((index as u32) << 3) | 0b100
                }
                NeonArrangement::D2 => {
                    assert!(index < 2, "dup: D lane index out of range");
                    ((index as u32) << 4) | 0b1000
                }
                _ => panic!("unsupported encoding: dup with {arrangement} arrangement"),
            };
            0x4E00_0400 | put(imm5, 16, 5) | put(vn.enc(), 5, 5) | vd.enc()
        }
        NeonInst::MoviZero { vd, arrangement } => {
            let base = match arrangement {
                NeonArrangement::S4 => 0x4F00_0400,
                NeonArrangement::D2 => 0x6F00_E400,
                _ => panic!("unsupported encoding: movi #0 with {arrangement} arrangement"),
            };
            base | vd.enc()
        }
    }
}

/// Decode a Neon instruction, returning `None` if the word is not in the
/// modelled Neon subset.
pub fn decode(word: u32) -> Option<NeonInst> {
    let rd = || vreg(get(word, 0, 5));
    let rn5 = || get(word, 5, 5);
    let rm = || vreg(get(word, 16, 5));

    if word & 0xFFE0_FC00 == 0x4E20_CC00 {
        return Some(NeonInst::FmlaVec {
            vd: rd(),
            vn: vreg(rn5()),
            vm: rm(),
            arrangement: NeonArrangement::S4,
        });
    }
    if word & 0xFFE0_FC00 == 0x4E60_CC00 {
        return Some(NeonInst::FmlaVec {
            vd: rd(),
            vn: vreg(rn5()),
            vm: rm(),
            arrangement: NeonArrangement::D2,
        });
    }
    if word & 0xFFE0_FC00 == 0x4E40_0C00 {
        return Some(NeonInst::FmlaVec {
            vd: rd(),
            vn: vreg(rn5()),
            vm: rm(),
            arrangement: NeonArrangement::H8,
        });
    }
    if word & 0xFFC0_F400 == 0x4F80_1000 {
        let index = (get(word, 11, 1) << 1 | get(word, 21, 1)) as u8;
        return Some(NeonInst::FmlaElem {
            vd: rd(),
            vn: vreg(rn5()),
            vm: rm(),
            index,
            arrangement: NeonArrangement::S4,
        });
    }
    if word & 0xFFE0_F400 == 0x4FC0_1000 {
        return Some(NeonInst::FmlaElem {
            vd: rd(),
            vn: vreg(rn5()),
            vm: rm(),
            index: get(word, 11, 1) as u8,
            arrangement: NeonArrangement::D2,
        });
    }
    if word & 0xFFE0_FC00 == 0x6E40_EC00 {
        return Some(NeonInst::Bfmmla {
            vd: rd(),
            vn: vreg(rn5()),
            vm: rm(),
        });
    }
    if word & 0xFFC0_0000 == 0x3DC0_0000 {
        return Some(NeonInst::LdrQ {
            vt: rd(),
            rn: xreg(rn5()),
            imm: get(word, 10, 12) * 16,
        });
    }
    if word & 0xFFC0_0000 == 0x3D80_0000 {
        return Some(NeonInst::StrQ {
            vt: rd(),
            rn: xreg(rn5()),
            imm: get(word, 10, 12) * 16,
        });
    }
    if word & 0xFFC0_0000 == 0xFD40_0000 {
        return Some(NeonInst::LdrD {
            vt: rd(),
            rn: xreg(rn5()),
            imm: get(word, 10, 12) * 8,
        });
    }
    if word & 0xFFC0_0000 == 0xFD00_0000 {
        return Some(NeonInst::StrD {
            vt: rd(),
            rn: xreg(rn5()),
            imm: get(word, 10, 12) * 8,
        });
    }
    if word & 0xFFC0_0000 == 0xBD40_0000 {
        return Some(NeonInst::LdrS {
            vt: rd(),
            rn: xreg(rn5()),
            imm: get(word, 10, 12) * 4,
        });
    }
    if word & 0xFFC0_0000 == 0xBD00_0000 {
        return Some(NeonInst::StrS {
            vt: rd(),
            rn: xreg(rn5()),
            imm: get(word, 10, 12) * 4,
        });
    }
    if word & 0xFFE0_8400 == 0x6E00_0400 {
        let imm5 = get(word, 16, 5);
        let imm4 = get(word, 11, 4);
        if imm5 & 0b1111 == 0b1000 && imm4 & 0b0111 == 0 {
            return Some(NeonInst::InsElemD {
                vd: rd(),
                vn: vreg(rn5()),
                dst: (imm5 >> 4) as u8,
                src: (imm4 >> 3) as u8,
            });
        }
        return None;
    }
    if word & 0xFFC0_0000 == 0xAD40_0000 {
        return Some(NeonInst::LdpQ {
            vt1: rd(),
            vt2: vreg(get(word, 10, 5)),
            rn: xreg(rn5()),
            imm: (unsigned_to_signed(get(word, 15, 7), 7) * 16) as i32,
        });
    }
    if word & 0xFFC0_0000 == 0xAD00_0000 {
        return Some(NeonInst::StpQ {
            vt1: rd(),
            vt2: vreg(get(word, 10, 5)),
            rn: xreg(rn5()),
            imm: (unsigned_to_signed(get(word, 15, 7), 7) * 16) as i32,
        });
    }
    if word & 0xFFE0_FC00 == 0x4E00_0400 {
        let imm5 = get(word, 16, 5);
        if imm5 & 0b100 == 0b100 && imm5 & 0b11 == 0 {
            return Some(NeonInst::DupElem {
                vd: rd(),
                vn: vreg(rn5()),
                index: (imm5 >> 3) as u8,
                arrangement: NeonArrangement::S4,
            });
        }
        if imm5 & 0b1000 == 0b1000 && imm5 & 0b111 == 0 {
            return Some(NeonInst::DupElem {
                vd: rd(),
                vn: vreg(rn5()),
                index: (imm5 >> 4) as u8,
                arrangement: NeonArrangement::D2,
            });
        }
        return None;
    }
    if word & 0xFFFF_FFE0 == 0x4F00_0400 {
        return Some(NeonInst::MoviZero {
            vd: rd(),
            arrangement: NeonArrangement::S4,
        });
    }
    if word & 0xFFFF_FFE0 == 0x6F00_E400 {
        return Some(NeonInst::MoviZero {
            vd: rd(),
            arrangement: NeonArrangement::D2,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::short::*;

    fn roundtrip(inst: NeonInst) {
        let word = encode(&inst);
        let back = decode(word).unwrap_or_else(|| panic!("failed to decode {inst} (0x{word:08x})"));
        assert_eq!(back, inst, "round-trip mismatch for {inst} (0x{word:08x})");
    }

    #[test]
    fn fmla_vec_known_word() {
        // fmla v1.4s, v30.4s, v31.4s (Lst. 1 line 5).
        let inst = NeonInst::fmla_vec(v(1), v(30), v(31), NeonArrangement::S4);
        assert_eq!(encode(&inst), 0x4E3FCFC1);
    }

    #[test]
    fn roundtrip_all_variants() {
        for arr in [
            NeonArrangement::S4,
            NeonArrangement::D2,
            NeonArrangement::H8,
        ] {
            roundtrip(NeonInst::fmla_vec(v(0), v(30), v(31), arr));
        }
        for idx in 0..4 {
            roundtrip(NeonInst::fmla_elem(
                v(4),
                v(28),
                v(29),
                idx,
                NeonArrangement::S4,
            ));
        }
        roundtrip(NeonInst::fmla_elem(
            v(4),
            v(28),
            v(29),
            1,
            NeonArrangement::D2,
        ));
        roundtrip(NeonInst::Bfmmla {
            vd: v(0),
            vn: v(1),
            vm: v(2),
        });
        roundtrip(NeonInst::LdrQ {
            vt: v(7),
            rn: x(3),
            imm: 256,
        });
        roundtrip(NeonInst::StrQ {
            vt: v(7),
            rn: x(3),
            imm: 65520,
        });
        roundtrip(NeonInst::LdrS {
            vt: v(12),
            rn: x(5),
            imm: 16380,
        });
        roundtrip(NeonInst::StrS {
            vt: v(12),
            rn: x(5),
            imm: 4,
        });
        roundtrip(NeonInst::LdpQ {
            vt1: v(0),
            vt2: v(1),
            rn: x(0),
            imm: -32,
        });
        roundtrip(NeonInst::StpQ {
            vt1: v(2),
            vt2: v(3),
            rn: XReg::SP,
            imm: 1008,
        });
        roundtrip(NeonInst::DupElem {
            vd: v(5),
            vn: v(6),
            index: 3,
            arrangement: NeonArrangement::S4,
        });
        roundtrip(NeonInst::DupElem {
            vd: v(5),
            vn: v(6),
            index: 1,
            arrangement: NeonArrangement::D2,
        });
        roundtrip(NeonInst::MoviZero {
            vd: v(9),
            arrangement: NeonArrangement::S4,
        });
        roundtrip(NeonInst::MoviZero {
            vd: v(9),
            arrangement: NeonArrangement::D2,
        });
    }

    #[test]
    #[should_panic(expected = "unsupported encoding")]
    fn unsupported_arrangement_panics() {
        let _ = encode(&NeonInst::fmla_elem(
            v(0),
            v(1),
            v(2),
            0,
            NeonArrangement::B16,
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ldr_q_offset_checked() {
        let _ = encode(&NeonInst::LdrQ {
            vt: v(0),
            rn: x(0),
            imm: 17,
        });
    }

    #[test]
    fn foreign_words_rejected() {
        assert_eq!(decode(0xD65F03C0), None, "ret is not a Neon instruction");
        assert_eq!(decode(0x00000000), None);
    }
}
