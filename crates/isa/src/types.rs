//! Element types, vector arrangements and the streaming vector length.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar element type of a vector lane, a ZA tile element or a matrix
/// operand.
///
/// The set matches the data types exercised by the paper's Table I plus the
/// 32-bit integer accumulator type used by the widening integer outer
/// products.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementType {
    /// IEEE-754 double precision.
    F64,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 half precision.
    F16,
    /// bfloat16 (8-bit exponent, 7-bit mantissa).
    BF16,
    /// Signed 8-bit integer.
    I8,
    /// Signed 16-bit integer.
    I16,
    /// Signed 32-bit integer.
    I32,
    /// Signed 64-bit integer.
    I64,
}

impl ElementType {
    /// Width of one element in bits.
    pub const fn bits(self) -> u32 {
        match self {
            ElementType::F64 | ElementType::I64 => 64,
            ElementType::F32 | ElementType::I32 => 32,
            ElementType::F16 | ElementType::BF16 | ElementType::I16 => 16,
            ElementType::I8 => 8,
        }
    }

    /// Width of one element in bytes.
    pub const fn bytes(self) -> u32 {
        self.bits() / 8
    }

    /// `true` for the floating-point types (including bfloat16).
    pub const fn is_float(self) -> bool {
        matches!(
            self,
            ElementType::F64 | ElementType::F32 | ElementType::F16 | ElementType::BF16
        )
    }

    /// `true` for the integer types.
    pub const fn is_int(self) -> bool {
        !self.is_float()
    }

    /// The SVE size suffix used in assembly syntax (`.b`, `.h`, `.s`, `.d`).
    pub const fn sve_suffix(self) -> &'static str {
        match self.bits() {
            8 => "b",
            16 => "h",
            32 => "s",
            _ => "d",
        }
    }

    /// Number of elements held by one scalable vector register of the given
    /// streaming vector length.
    pub const fn elems_per_vector(self, svl: StreamingVectorLength) -> usize {
        (svl.bits() / self.bits()) as usize
    }

    /// Dimension (rows = columns) of a square ZA tile holding this element
    /// type at the given streaming vector length.
    ///
    /// For FP32 on an SVL-512 machine this is 16, matching the 16×16 tiles
    /// described in the paper.
    pub const fn tile_dim(self, svl: StreamingVectorLength) -> usize {
        (svl.bits() / self.bits()) as usize
    }

    /// Number of ZA tiles available for this element type.
    ///
    /// The ZA array is divided into `bits / 8` tiles of element width
    /// `bits`: 1 tile of bytes, 2 of halfwords, 4 of words, 8 of
    /// doublewords.
    pub const fn num_tiles(self) -> usize {
        (self.bits() / 8) as usize
    }
}

impl fmt::Display for ElementType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ElementType::F64 => "fp64",
            ElementType::F32 => "fp32",
            ElementType::F16 => "fp16",
            ElementType::BF16 => "bf16",
            ElementType::I8 => "i8",
            ElementType::I16 => "i16",
            ElementType::I32 => "i32",
            ElementType::I64 => "i64",
        };
        f.write_str(s)
    }
}

/// The Streaming Vector Length (SVL) of the machine.
///
/// SME defines the SVL as an implementation choice between 128 and 2048
/// bits in powers of two. Apple's M4 implements 512 bits; the simulator is
/// parameterised so that hypothetical wider or narrower implementations can
/// be explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamingVectorLength(u32);

impl StreamingVectorLength {
    /// The SVL of Apple's M4 (512 bits), the testbed used by the paper.
    pub const M4: StreamingVectorLength = StreamingVectorLength(512);

    /// Construct a streaming vector length from a bit count.
    ///
    /// # Panics
    /// Panics if `bits` is not a power of two in `[128, 2048]`.
    pub fn new(bits: u32) -> Self {
        assert!(
            (128..=2048).contains(&bits) && bits.is_power_of_two(),
            "SVL must be a power of two between 128 and 2048 bits, got {bits}"
        );
        StreamingVectorLength(bits)
    }

    /// Vector length in bits.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Vector length in bytes (the `VL` unit used by `mul vl` addressing).
    pub const fn bytes(self) -> u32 {
        self.0 / 8
    }

    /// Total size of the ZA array in bytes: `(SVL/8) * (SVL/8)`.
    ///
    /// 4096 bytes on M4.
    pub const fn za_bytes(self) -> usize {
        (self.bytes() as usize) * (self.bytes() as usize)
    }

    /// Number of ZA array vectors (horizontal slices of the full array),
    /// each SVL bits wide.
    pub const fn za_vectors(self) -> usize {
        self.bytes() as usize
    }
}

impl Default for StreamingVectorLength {
    fn default() -> Self {
        StreamingVectorLength::M4
    }
}

impl fmt::Display for StreamingVectorLength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SVL{}", self.0)
    }
}

/// Arrangement specifier of a Neon (ASIMD) register operand, e.g. `v0.4s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NeonArrangement {
    /// Sixteen byte lanes.
    B16,
    /// Eight halfword lanes.
    H8,
    /// Four single-precision lanes.
    S4,
    /// Two double-precision lanes.
    D2,
}

impl NeonArrangement {
    /// Number of lanes in the 128-bit register.
    pub const fn lanes(self) -> usize {
        match self {
            NeonArrangement::B16 => 16,
            NeonArrangement::H8 => 8,
            NeonArrangement::S4 => 4,
            NeonArrangement::D2 => 2,
        }
    }

    /// Width of one lane in bits.
    pub const fn lane_bits(self) -> u32 {
        128 / self.lanes() as u32
    }

    /// The element type naturally associated with a floating-point
    /// arrangement.
    pub const fn float_type(self) -> ElementType {
        match self {
            NeonArrangement::B16 => ElementType::I8,
            NeonArrangement::H8 => ElementType::F16,
            NeonArrangement::S4 => ElementType::F32,
            NeonArrangement::D2 => ElementType::F64,
        }
    }

    /// Assembly suffix, e.g. `4s`.
    pub const fn suffix(self) -> &'static str {
        match self {
            NeonArrangement::B16 => "16b",
            NeonArrangement::H8 => "8h",
            NeonArrangement::S4 => "4s",
            NeonArrangement::D2 => "2d",
        }
    }
}

impl fmt::Display for NeonArrangement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Condition codes for conditional branches (subset used by generated code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Equal (Z set).
    Eq,
    /// Not equal (Z clear).
    Ne,
    /// Unsigned lower (C clear).
    Lo,
    /// Unsigned higher or same (C set).
    Hs,
    /// Signed less than.
    Lt,
    /// Signed greater than or equal.
    Ge,
    /// Signed greater than.
    Gt,
    /// Signed less than or equal.
    Le,
}

impl Cond {
    /// The 4-bit AArch64 condition field encoding.
    pub const fn code(self) -> u32 {
        match self {
            Cond::Eq => 0b0000,
            Cond::Ne => 0b0001,
            Cond::Hs => 0b0010,
            Cond::Lo => 0b0011,
            Cond::Ge => 0b1010,
            Cond::Lt => 0b1011,
            Cond::Gt => 0b1100,
            Cond::Le => 0b1101,
        }
    }

    /// Decode a 4-bit condition field into the supported subset.
    pub const fn from_code(code: u32) -> Option<Cond> {
        match code & 0xf {
            0b0000 => Some(Cond::Eq),
            0b0001 => Some(Cond::Ne),
            0b0010 => Some(Cond::Hs),
            0b0011 => Some(Cond::Lo),
            0b1010 => Some(Cond::Ge),
            0b1011 => Some(Cond::Lt),
            0b1100 => Some(Cond::Gt),
            0b1101 => Some(Cond::Le),
            _ => None,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lo => "lo",
            Cond::Hs => "hs",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Gt => "gt",
            Cond::Le => "le",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_sizes() {
        assert_eq!(ElementType::F64.bits(), 64);
        assert_eq!(ElementType::F32.bits(), 32);
        assert_eq!(ElementType::F16.bits(), 16);
        assert_eq!(ElementType::BF16.bits(), 16);
        assert_eq!(ElementType::I8.bits(), 8);
        assert_eq!(ElementType::I8.bytes(), 1);
        assert_eq!(ElementType::F32.bytes(), 4);
    }

    #[test]
    fn float_int_classification() {
        assert!(ElementType::F32.is_float());
        assert!(ElementType::BF16.is_float());
        assert!(ElementType::I8.is_int());
        assert!(!ElementType::I32.is_float());
    }

    #[test]
    fn m4_svl_geometry() {
        let svl = StreamingVectorLength::M4;
        assert_eq!(svl.bits(), 512);
        assert_eq!(svl.bytes(), 64);
        assert_eq!(svl.za_bytes(), 4096);
        assert_eq!(svl.za_vectors(), 64);
        // The paper: FP32 tiles are 16x16 and there are four of them.
        assert_eq!(ElementType::F32.tile_dim(svl), 16);
        assert_eq!(ElementType::F32.num_tiles(), 4);
        // FP64: 8x8 tiles, eight of them.
        assert_eq!(ElementType::F64.tile_dim(svl), 8);
        assert_eq!(ElementType::F64.num_tiles(), 8);
        // FP32 vectors hold 16 elements on M4.
        assert_eq!(ElementType::F32.elems_per_vector(svl), 16);
    }

    #[test]
    #[should_panic(expected = "SVL must be a power of two")]
    fn invalid_svl_rejected() {
        let _ = StreamingVectorLength::new(384);
    }

    #[test]
    fn svl_constructor_accepts_all_architectural_lengths() {
        for bits in [128u32, 256, 512, 1024, 2048] {
            let svl = StreamingVectorLength::new(bits);
            assert_eq!(svl.bits(), bits);
            assert_eq!(svl.za_bytes(), ((bits / 8) * (bits / 8)) as usize);
        }
    }

    #[test]
    fn neon_arrangements() {
        assert_eq!(NeonArrangement::S4.lanes(), 4);
        assert_eq!(NeonArrangement::S4.lane_bits(), 32);
        assert_eq!(NeonArrangement::D2.lanes(), 2);
        assert_eq!(NeonArrangement::H8.lanes(), 8);
        assert_eq!(NeonArrangement::B16.lanes(), 16);
        assert_eq!(NeonArrangement::S4.suffix(), "4s");
    }

    #[test]
    fn cond_roundtrip() {
        for cond in [
            Cond::Eq,
            Cond::Ne,
            Cond::Lo,
            Cond::Hs,
            Cond::Lt,
            Cond::Ge,
            Cond::Gt,
            Cond::Le,
        ] {
            assert_eq!(Cond::from_code(cond.code()), Some(cond));
        }
        assert_eq!(Cond::from_code(0b0110), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ElementType::F32.to_string(), "fp32");
        assert_eq!(ElementType::BF16.to_string(), "bf16");
        assert_eq!(StreamingVectorLength::M4.to_string(), "SVL512");
        assert_eq!(NeonArrangement::D2.to_string(), "2d");
        assert_eq!(Cond::Ne.to_string(), "ne");
    }
}
