//! Property-based encode/decode round-trip tests.
//!
//! Correctness of the machine-code layer is defined by the property that
//! decoding inverts encoding for every operand combination the generator can
//! emit. These strategies generate instructions across the full operand
//! space of the modelled subset.

use proptest::prelude::*;
use sme_isa::decode::decode;
use sme_isa::encode::encode;
use sme_isa::inst::scalar::{BranchTarget, ScalarInst, ShiftOp};
use sme_isa::inst::{Inst, NeonInst, SmeInst, SveInst};
use sme_isa::regs::{PReg, PnReg, TileSliceDir, VReg, XReg, ZReg, ZaTile};
use sme_isa::types::{Cond, ElementType, NeonArrangement};

fn xreg() -> impl Strategy<Value = XReg> {
    (0u8..=30).prop_map(XReg::new)
}

fn vreg() -> impl Strategy<Value = VReg> {
    (0u8..=31).prop_map(VReg::new)
}

fn zreg() -> impl Strategy<Value = ZReg> {
    (0u8..=31).prop_map(ZReg::new)
}

fn preg() -> impl Strategy<Value = PReg> {
    (0u8..=15).prop_map(PReg::new)
}

fn gov_preg() -> impl Strategy<Value = PReg> {
    (0u8..=7).prop_map(PReg::new)
}

fn pnreg() -> impl Strategy<Value = PnReg> {
    (8u8..=15).prop_map(PnReg::new)
}

fn slice_reg() -> impl Strategy<Value = XReg> {
    (12u8..=15).prop_map(XReg::new)
}

fn vsel_reg() -> impl Strategy<Value = XReg> {
    (8u8..=11).prop_map(XReg::new)
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lo),
        Just(Cond::Hs),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::Gt),
        Just(Cond::Le),
    ]
}

fn mem_elem() -> impl Strategy<Value = ElementType> {
    prop_oneof![
        Just(ElementType::I8),
        Just(ElementType::F16),
        Just(ElementType::F32),
        Just(ElementType::F64),
    ]
}

fn scalar_inst() -> impl Strategy<Value = ScalarInst> {
    prop_oneof![
        (xreg(), any::<u16>(), 0u8..4).prop_map(|(rd, imm16, hw)| ScalarInst::MovZ {
            rd,
            imm16,
            hw
        }),
        (xreg(), any::<u16>(), 0u8..4).prop_map(|(rd, imm16, hw)| ScalarInst::MovK {
            rd,
            imm16,
            hw
        }),
        (xreg(), xreg()).prop_map(|(rd, rn)| ScalarInst::MovReg { rd, rn }),
        (xreg(), xreg(), 0u16..4096, any::<bool>()).prop_map(|(rd, rn, imm12, shift12)| {
            ScalarInst::AddImm {
                rd,
                rn,
                imm12,
                shift12,
            }
        }),
        (xreg(), xreg(), 0u16..4096, any::<bool>()).prop_map(|(rd, rn, imm12, shift12)| {
            ScalarInst::SubImm {
                rd,
                rn,
                imm12,
                shift12,
            }
        }),
        (xreg(), xreg(), 0u16..4096).prop_map(|(rd, rn, imm12)| ScalarInst::SubsImm {
            rd,
            rn,
            imm12
        }),
        (
            xreg(),
            xreg(),
            xreg(),
            prop_oneof![Just(None), (1u8..64).prop_map(|n| Some(ShiftOp::Lsl(n)))]
        )
            .prop_map(|(rd, rn, rm, shift)| ScalarInst::AddReg { rd, rn, rm, shift }),
        (
            xreg(),
            xreg(),
            xreg(),
            prop_oneof![Just(None), (1u8..64).prop_map(|n| Some(ShiftOp::Lsl(n)))]
        )
            .prop_map(|(rd, rn, rm, shift)| ScalarInst::SubReg { rd, rn, rm, shift }),
        (xreg(), xreg(), xreg(), xreg()).prop_map(|(rd, rn, rm, ra)| ScalarInst::Madd {
            rd,
            rn,
            rm,
            ra
        }),
        (xreg(), xreg(), 0u8..64).prop_map(|(rd, rn, shift)| ScalarInst::LslImm { rd, rn, shift }),
        (xreg(), xreg()).prop_map(|(rn, rm)| ScalarInst::CmpReg { rn, rm }),
        (xreg(), 0u16..4096).prop_map(|(rn, imm12)| ScalarInst::CmpImm { rn, imm12 }),
        (xreg(), -1000i32..1000).prop_map(|(rn, o)| ScalarInst::Cbnz {
            rn,
            target: BranchTarget::Offset(o)
        }),
        (xreg(), -1000i32..1000).prop_map(|(rn, o)| ScalarInst::Cbz {
            rn,
            target: BranchTarget::Offset(o)
        }),
        (-100000i32..100000).prop_map(|o| ScalarInst::B {
            target: BranchTarget::Offset(o)
        }),
        (cond(), -1000i32..1000).prop_map(|(c, o)| ScalarInst::BCond {
            cond: c,
            target: BranchTarget::Offset(o)
        }),
        Just(ScalarInst::Nop),
        Just(ScalarInst::Ret),
    ]
}

fn neon_inst() -> impl Strategy<Value = NeonInst> {
    let arr3 = prop_oneof![
        Just(NeonArrangement::S4),
        Just(NeonArrangement::D2),
        Just(NeonArrangement::H8)
    ];
    prop_oneof![
        (vreg(), vreg(), vreg(), arr3)
            .prop_map(|(vd, vn, vm, a)| NeonInst::fmla_vec(vd, vn, vm, a)),
        (vreg(), vreg(), vreg(), 0u8..4).prop_map(|(vd, vn, vm, i)| NeonInst::fmla_elem(
            vd,
            vn,
            vm,
            i,
            NeonArrangement::S4
        )),
        (vreg(), vreg(), vreg(), 0u8..2).prop_map(|(vd, vn, vm, i)| NeonInst::fmla_elem(
            vd,
            vn,
            vm,
            i,
            NeonArrangement::D2
        )),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vn, vm)| NeonInst::Bfmmla { vd, vn, vm }),
        (vreg(), xreg(), 0u32..4096).prop_map(|(vt, rn, i)| NeonInst::LdrQ {
            vt,
            rn,
            imm: i * 16
        }),
        (vreg(), xreg(), 0u32..4096).prop_map(|(vt, rn, i)| NeonInst::StrQ {
            vt,
            rn,
            imm: i * 16
        }),
        (vreg(), vreg(), xreg(), -64i32..64).prop_map(|(vt1, vt2, rn, i)| NeonInst::LdpQ {
            vt1,
            vt2,
            rn,
            imm: i * 16
        }),
        (vreg(), vreg(), xreg(), -64i32..64).prop_map(|(vt1, vt2, rn, i)| NeonInst::StpQ {
            vt1,
            vt2,
            rn,
            imm: i * 16
        }),
        (vreg(), xreg(), 0u32..4096).prop_map(|(vt, rn, i)| NeonInst::LdrD { vt, rn, imm: i * 8 }),
        (vreg(), xreg(), 0u32..4096).prop_map(|(vt, rn, i)| NeonInst::StrD { vt, rn, imm: i * 8 }),
        (vreg(), xreg(), 0u32..4096).prop_map(|(vt, rn, i)| NeonInst::LdrS { vt, rn, imm: i * 4 }),
        (vreg(), xreg(), 0u32..4096).prop_map(|(vt, rn, i)| NeonInst::StrS { vt, rn, imm: i * 4 }),
        (vreg(), vreg(), 0u8..2, 0u8..2).prop_map(|(vd, vn, dst, src)| NeonInst::InsElemD {
            vd,
            vn,
            dst,
            src
        }),
        (vreg(), vreg(), 0u8..4).prop_map(|(vd, vn, i)| NeonInst::DupElem {
            vd,
            vn,
            index: i,
            arrangement: NeonArrangement::S4
        }),
        (vreg(), vreg(), 0u8..2).prop_map(|(vd, vn, i)| NeonInst::DupElem {
            vd,
            vn,
            index: i,
            arrangement: NeonArrangement::D2
        }),
        vreg().prop_map(|vd| NeonInst::MoviZero {
            vd,
            arrangement: NeonArrangement::S4
        }),
        vreg().prop_map(|vd| NeonInst::MoviZero {
            vd,
            arrangement: NeonArrangement::D2
        }),
    ]
}

fn sve_inst() -> impl Strategy<Value = SveInst> {
    prop_oneof![
        (preg(), mem_elem()).prop_map(|(pd, elem)| SveInst::Ptrue { pd, elem }),
        (pnreg(), mem_elem()).prop_map(|(pn, elem)| SveInst::PtrueCnt { pn, elem }),
        (preg(), mem_elem(), xreg(), xreg()).prop_map(|(pd, elem, rn, rm)| SveInst::Whilelt {
            pd,
            elem,
            rn,
            rm
        }),
        (
            pnreg(),
            mem_elem(),
            xreg(),
            xreg(),
            prop_oneof![Just(2u8), Just(4u8)]
        )
            .prop_map(|(pn, elem, rn, rm, vl)| SveInst::WhileltCnt {
                pn,
                elem,
                rn,
                rm,
                vl
            }),
        (zreg(), mem_elem(), gov_preg(), xreg(), -8i8..8).prop_map(|(zt, elem, pg, rn, imm_vl)| {
            SveInst::Ld1 {
                zt,
                elem,
                pg,
                rn,
                imm_vl,
            }
        }),
        (zreg(), mem_elem(), gov_preg(), xreg(), -8i8..8).prop_map(|(zt, elem, pg, rn, imm_vl)| {
            SveInst::St1 {
                zt,
                elem,
                pg,
                rn,
                imm_vl,
            }
        }),
        (
            zreg(),
            prop_oneof![Just(2u8), Just(4u8)],
            mem_elem(),
            pnreg(),
            xreg(),
            -8i8..8
        )
            .prop_map(|(zt, count, elem, pn, rn, imm_vl)| SveInst::Ld1Multi {
                zt,
                count,
                elem,
                pn,
                rn,
                imm_vl
            }),
        (
            zreg(),
            prop_oneof![Just(2u8), Just(4u8)],
            mem_elem(),
            pnreg(),
            xreg(),
            -8i8..8
        )
            .prop_map(|(zt, count, elem, pn, rn, imm_vl)| SveInst::St1Multi {
                zt,
                count,
                elem,
                pn,
                rn,
                imm_vl
            }),
        (zreg(), xreg(), -256i16..256).prop_map(|(zt, rn, imm_vl)| SveInst::LdrZ {
            zt,
            rn,
            imm_vl
        }),
        (zreg(), xreg(), -256i16..256).prop_map(|(zt, rn, imm_vl)| SveInst::StrZ {
            zt,
            rn,
            imm_vl
        }),
        (
            zreg(),
            gov_preg(),
            zreg(),
            zreg(),
            prop_oneof![Just(ElementType::F32), Just(ElementType::F64)]
        )
            .prop_map(|(zd, pg, zn, zm, elem)| SveInst::FmlaSve {
                zd,
                pg,
                zn,
                zm,
                elem
            }),
        (zreg(), mem_elem(), any::<i8>()).prop_map(|(zd, elem, imm)| SveInst::DupImm {
            zd,
            elem,
            imm
        }),
        (xreg(), xreg(), -32i8..32).prop_map(|(rd, rn, imm)| SveInst::AddVl { rd, rn, imm }),
    ]
}

fn sme_inst() -> impl Strategy<Value = SmeInst> {
    prop_oneof![
        any::<bool>().prop_map(|za_only| SmeInst::Smstart { za_only }),
        any::<bool>().prop_map(|za_only| SmeInst::Smstop { za_only }),
        (0u8..4, gov_preg(), gov_preg(), zreg(), zreg())
            .prop_map(|(tile, pn, pm, zn, zm)| SmeInst::fmopa_f32(tile, pn, pm, zn, zm)),
        (0u8..8, gov_preg(), gov_preg(), zreg(), zreg())
            .prop_map(|(tile, pn, pm, zn, zm)| SmeInst::fmopa_f64(tile, pn, pm, zn, zm)),
        (
            0u8..4,
            gov_preg(),
            gov_preg(),
            zreg(),
            zreg(),
            prop_oneof![Just(ElementType::BF16), Just(ElementType::F16)]
        )
            .prop_map(|(tile, pn, pm, zn, zm, from)| SmeInst::FmopaWide {
                tile,
                from,
                pn,
                pm,
                zn,
                zm
            }),
        (
            0u8..4,
            gov_preg(),
            gov_preg(),
            zreg(),
            zreg(),
            prop_oneof![Just(ElementType::I8), Just(ElementType::I16)]
        )
            .prop_map(|(tile, pn, pm, zn, zm, from)| SmeInst::Smopa {
                tile,
                from,
                pn,
                pm,
                zn,
                zm
            }),
        (
            0u8..4,
            prop_oneof![Just(TileSliceDir::Horizontal), Just(TileSliceDir::Vertical)],
            slice_reg(),
            0u8..16,
            zreg(),
            prop_oneof![Just(1u8), Just(2u8), Just(4u8)]
        )
            .prop_map(|(t, dir, rs, offset, zt, count)| SmeInst::MovaToTile {
                tile: ZaTile::s(t),
                dir,
                rs,
                offset,
                zt,
                count
            }),
        (
            0u8..4,
            prop_oneof![Just(TileSliceDir::Horizontal), Just(TileSliceDir::Vertical)],
            slice_reg(),
            0u8..16,
            zreg(),
            prop_oneof![Just(1u8), Just(2u8), Just(4u8)]
        )
            .prop_map(|(t, dir, rs, offset, zt, count)| SmeInst::MovaFromTile {
                tile: ZaTile::s(t),
                dir,
                rs,
                offset,
                zt,
                count
            }),
        (slice_reg(), 0u8..16, xreg()).prop_map(|(rs, offset, rn)| SmeInst::LdrZa {
            rs,
            offset,
            rn
        }),
        (slice_reg(), 0u8..16, xreg()).prop_map(|(rs, offset, rn)| SmeInst::StrZa {
            rs,
            offset,
            rn
        }),
        any::<u8>().prop_map(|mask| SmeInst::ZeroZa { mask }),
        (
            prop_oneof![Just(ElementType::F32), Just(ElementType::F64)],
            prop_oneof![Just(2u8), Just(4u8)],
            vsel_reg(),
            0u8..8,
            zreg(),
            zreg()
        )
            .prop_map(|(elem, vgx, rv, offset, zn, zm)| SmeInst::FmlaZaVectors {
                elem,
                vgx,
                rv,
                offset,
                zn,
                zm
            }),
    ]
}

fn any_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        scalar_inst().prop_map(Inst::Scalar),
        neon_inst().prop_map(Inst::Neon),
        sve_inst().prop_map(Inst::Sve),
        sme_inst().prop_map(Inst::Sme),
    ]
}

/// High-volume deterministic complement to the proptest fuzz case below:
/// two million xorshift words plus every single-bit mutation of valid
/// encodings (the mutations concentrate on the decoder's accepting
/// neighbourhoods, where operand validation bugs live).
#[test]
fn decode_scan_is_total() {
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    for _ in 0..2_000_000 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let _ = decode(state as u32);
    }

    let samples: Vec<Inst> = vec![
        Inst::Sme(SmeInst::fmopa_f32(
            3,
            PReg::new(1),
            PReg::new(2),
            ZReg::new(4),
            ZReg::new(8),
        )),
        Inst::Sme(SmeInst::MovaToTile {
            tile: ZaTile::s(2),
            dir: TileSliceDir::Vertical,
            rs: XReg::new(13),
            offset: 9,
            zt: ZReg::new(16),
            count: 4,
        }),
        Inst::Sme(SmeInst::ZeroZa { mask: 0xA5 }),
        Inst::Sve(SveInst::Ld1 {
            zt: ZReg::new(3),
            elem: ElementType::F32,
            pg: PReg::new(5),
            rn: XReg::new(7),
            imm_vl: -3,
        }),
        Inst::Neon(NeonInst::fmla_vec(
            sme_isa::regs::VReg::new(1),
            sme_isa::regs::VReg::new(2),
            sme_isa::regs::VReg::new(3),
            NeonArrangement::S4,
        )),
        Inst::Scalar(ScalarInst::MovZ {
            rd: XReg::new(0),
            imm16: 0xBEEF,
            hw: 2,
        }),
    ];
    for inst in &samples {
        let word = encode(inst);
        assert_eq!(decode(word), Some(*inst), "sample must round-trip: {inst}");
        for bit in 0..32 {
            let _ = decode(word ^ (1 << bit));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// decode(encode(i)) == i for every instruction the generator can emit.
    #[test]
    fn encode_decode_roundtrip(inst in any_inst()) {
        let word = encode(&inst);
        prop_assert_eq!(decode(word), Some(inst));
    }

    /// Two different instructions never share an encoding.
    #[test]
    fn encodings_are_injective(a in any_inst(), b in any_inst()) {
        if a != b {
            prop_assert_ne!(encode(&a), encode(&b), "collision between {} and {}", a, b);
        }
    }

    /// Display formatting never panics and is non-empty.
    #[test]
    fn display_total(inst in any_inst()) {
        prop_assert!(!inst.to_string().is_empty());
    }

    /// Decoding is total over the full 32-bit word space: arbitrary words
    /// (almost all of which are not valid encodings of the modelled subset)
    /// must decode to a structured `None`, never panic. When a word does
    /// decode, decoding is deterministic and the result prints.
    #[test]
    fn decode_never_panics_on_arbitrary_words(word in any::<u32>()) {
        let first = decode(word);
        prop_assert_eq!(&decode(word), &first, "decode must be deterministic for {:#010x}", word);
        if let Some(inst) = first {
            prop_assert!(!inst.to_string().is_empty());
        }
    }

    /// `decode_bytes` is equally total: byte buffers assembled from
    /// arbitrary words either decode every word or return `None` (for
    /// unknown words mid-stream), without panicking. Truncated buffers
    /// (length not a multiple of four) must also be rejected gracefully.
    #[test]
    fn decode_bytes_never_panics(words in proptest::collection::vec(any::<u32>(), 0..16), cut in 0usize..4) {
        let mut bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let _ = sme_isa::decode::decode_bytes(&bytes);
        bytes.truncate(bytes.len().saturating_sub(cut));
        let _ = sme_isa::decode::decode_bytes(&bytes);
    }
}
