//! Functional semantics of the ASIMD (Neon) instructions.

use crate::exec::fp::{bf16_to_f32, f16_to_f32, f32_to_f16};
use crate::mem::Memory;
use crate::state::CoreState;
use sme_isa::inst::neon::NeonInst;
use sme_isa::regs::VReg;
use sme_isa::types::NeonArrangement;

fn read_f32x4(state: &CoreState, r: VReg) -> [f32; 4] {
    state.v_f32(r)
}

fn read_f64x2(state: &CoreState, r: VReg) -> [f64; 2] {
    let b = state.v(r);
    [
        f64::from_le_bytes(b[0..8].try_into().unwrap()),
        f64::from_le_bytes(b[8..16].try_into().unwrap()),
    ]
}

fn write_f64x2(state: &mut CoreState, r: VReg, lanes: [f64; 2]) {
    let mut b = [0u8; 16];
    b[0..8].copy_from_slice(&lanes[0].to_le_bytes());
    b[8..16].copy_from_slice(&lanes[1].to_le_bytes());
    state.set_v(r, b);
}

fn read_f16x8(state: &CoreState, r: VReg) -> [f32; 8] {
    let b = state.v(r);
    let mut out = [0f32; 8];
    for (i, c) in b.chunks_exact(2).enumerate() {
        out[i] = f16_to_f32(u16::from_le_bytes([c[0], c[1]]));
    }
    out
}

fn write_f16x8(state: &mut CoreState, r: VReg, lanes: [f32; 8]) {
    let mut b = [0u8; 16];
    for (i, v) in lanes.iter().enumerate() {
        b[i * 2..i * 2 + 2].copy_from_slice(&f32_to_f16(*v).to_le_bytes());
    }
    state.set_v(r, b);
}

fn read_bf16x8(state: &CoreState, r: VReg) -> [f32; 8] {
    let b = state.v(r);
    let mut out = [0f32; 8];
    for (i, c) in b.chunks_exact(2).enumerate() {
        out[i] = bf16_to_f32(u16::from_le_bytes([c[0], c[1]]));
    }
    out
}

fn fmla_lanes(
    state: &mut CoreState,
    vd: VReg,
    vn: VReg,
    vm_lane: &dyn Fn(usize) -> f64,
    arr: NeonArrangement,
) {
    match arr {
        NeonArrangement::S4 => {
            let mut d = read_f32x4(state, vd);
            let n = read_f32x4(state, vn);
            for i in 0..4 {
                d[i] += n[i] * vm_lane(i) as f32;
            }
            state.set_v_f32(vd, d);
        }
        NeonArrangement::D2 => {
            let mut d = read_f64x2(state, vd);
            let n = read_f64x2(state, vn);
            for i in 0..2 {
                d[i] += n[i] * vm_lane(i);
            }
            write_f64x2(state, vd, d);
        }
        NeonArrangement::H8 => {
            let mut d = read_f16x8(state, vd);
            let n = read_f16x8(state, vn);
            for i in 0..8 {
                d[i] += n[i] * vm_lane(i) as f32;
            }
            write_f16x8(state, vd, d);
        }
        NeonArrangement::B16 => panic!("byte-lane FMLA is not a valid instruction"),
    }
}

/// Execute one Neon instruction.
pub fn exec(state: &mut CoreState, mem: &mut Memory, inst: &NeonInst) {
    match *inst {
        NeonInst::FmlaVec {
            vd,
            vn,
            vm,
            arrangement,
        } => {
            let m32 = read_f32x4(state, vm);
            let m64 = read_f64x2(state, vm);
            let m16 = read_f16x8(state, vm);
            let lane = move |i: usize| -> f64 {
                match arrangement {
                    NeonArrangement::S4 => m32[i] as f64,
                    NeonArrangement::D2 => m64[i],
                    NeonArrangement::H8 => m16[i] as f64,
                    NeonArrangement::B16 => 0.0,
                }
            };
            fmla_lanes(state, vd, vn, &lane, arrangement);
        }
        NeonInst::FmlaElem {
            vd,
            vn,
            vm,
            index,
            arrangement,
        } => {
            let m32 = read_f32x4(state, vm);
            let m64 = read_f64x2(state, vm);
            let m16 = read_f16x8(state, vm);
            let lane = move |_i: usize| -> f64 {
                match arrangement {
                    NeonArrangement::S4 => m32[index as usize] as f64,
                    NeonArrangement::D2 => m64[index as usize],
                    NeonArrangement::H8 => m16[index as usize] as f64,
                    NeonArrangement::B16 => 0.0,
                }
            };
            fmla_lanes(state, vd, vn, &lane, arrangement);
        }
        NeonInst::Bfmmla { vd, vn, vm } => {
            // C (2x2 FP32) += A (2x4 BF16) * B (2x4 BF16)^T:
            // C[i][j] += sum_k A[i*4+k] * B[j*4+k].
            let a = read_bf16x8(state, vn);
            let b = read_bf16x8(state, vm);
            let mut c = read_f32x4(state, vd);
            for i in 0..2 {
                for j in 0..2 {
                    let mut acc = 0f32;
                    for k in 0..4 {
                        acc += a[i * 4 + k] * b[j * 4 + k];
                    }
                    c[i * 2 + j] += acc;
                }
            }
            state.set_v_f32(vd, c);
        }
        NeonInst::LdrQ { vt, rn, imm } => {
            let addr = state.x(rn) + imm as u64;
            let bytes = mem.read_bytes(addr, 16);
            let mut b = [0u8; 16];
            b.copy_from_slice(bytes);
            state.set_v(vt, b);
        }
        NeonInst::StrQ { vt, rn, imm } => {
            let addr = state.x(rn) + imm as u64;
            let b = state.v(vt);
            mem.write_bytes(addr, &b);
        }
        NeonInst::LdrD { vt, rn, imm } => {
            let addr = state.x(rn) + imm as u64;
            let mut b = [0u8; 16];
            b[..8].copy_from_slice(mem.read_bytes(addr, 8));
            state.set_v(vt, b);
        }
        NeonInst::StrD { vt, rn, imm } => {
            let addr = state.x(rn) + imm as u64;
            let b = state.v(vt);
            mem.write_bytes(addr, &b[..8]);
        }
        NeonInst::LdrS { vt, rn, imm } => {
            let addr = state.x(rn) + imm as u64;
            let mut b = [0u8; 16];
            b[..4].copy_from_slice(mem.read_bytes(addr, 4));
            state.set_v(vt, b);
        }
        NeonInst::StrS { vt, rn, imm } => {
            let addr = state.x(rn) + imm as u64;
            let b = state.v(vt);
            mem.write_bytes(addr, &b[..4]);
        }
        NeonInst::InsElemD { vd, vn, dst, src } => {
            let n = state.v(vn);
            let mut d = state.v(vd);
            let (dst, src) = (dst as usize * 8, src as usize * 8);
            let lane: [u8; 8] = n[src..src + 8].try_into().expect("eight bytes");
            d[dst..dst + 8].copy_from_slice(&lane);
            state.set_v(vd, d);
        }
        NeonInst::LdpQ { vt1, vt2, rn, imm } => {
            let addr = (state.x(rn) as i64 + imm as i64) as u64;
            let mut b1 = [0u8; 16];
            b1.copy_from_slice(mem.read_bytes(addr, 16));
            let mut b2 = [0u8; 16];
            b2.copy_from_slice(mem.read_bytes(addr + 16, 16));
            state.set_v(vt1, b1);
            state.set_v(vt2, b2);
        }
        NeonInst::StpQ { vt1, vt2, rn, imm } => {
            let addr = (state.x(rn) as i64 + imm as i64) as u64;
            let b1 = state.v(vt1);
            let b2 = state.v(vt2);
            mem.write_bytes(addr, &b1);
            mem.write_bytes(addr + 16, &b2);
        }
        NeonInst::DupElem {
            vd,
            vn,
            index,
            arrangement,
        } => match arrangement {
            NeonArrangement::S4 => {
                let n = read_f32x4(state, vn);
                state.set_v_f32(vd, [n[index as usize]; 4]);
            }
            NeonArrangement::D2 => {
                let n = read_f64x2(state, vn);
                write_f64x2(state, vd, [n[index as usize]; 2]);
            }
            _ => {
                let n = read_f16x8(state, vn);
                write_f16x8(state, vd, [n[index as usize]; 8]);
            }
        },
        NeonInst::MoviZero { vd, .. } => {
            state.set_v(vd, [0u8; 16]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_isa::regs::short::*;
    use sme_isa::types::StreamingVectorLength;

    fn setup() -> (CoreState, Memory) {
        (CoreState::new(StreamingVectorLength::M4), Memory::new())
    }

    #[test]
    fn fmla_vector_f32() {
        let (mut s, mut m) = setup();
        s.set_v_f32(v(0), [1.0, 2.0, 3.0, 4.0]);
        s.set_v_f32(v(30), [2.0, 2.0, 2.0, 2.0]);
        s.set_v_f32(v(31), [10.0, 20.0, 30.0, 40.0]);
        exec(
            &mut s,
            &mut m,
            &NeonInst::fmla_vec(v(0), v(30), v(31), NeonArrangement::S4),
        );
        assert_eq!(s.v_f32(v(0)), [21.0, 42.0, 63.0, 84.0]);
    }

    #[test]
    fn fmla_vector_f64_and_f16() {
        let (mut s, mut m) = setup();
        write_f64x2(&mut s, v(1), [1.0, -1.0]);
        write_f64x2(&mut s, v(2), [3.0, 4.0]);
        write_f64x2(&mut s, v(3), [10.0, 100.0]);
        exec(
            &mut s,
            &mut m,
            &NeonInst::fmla_vec(v(1), v(2), v(3), NeonArrangement::D2),
        );
        assert_eq!(read_f64x2(&s, v(1)), [31.0, 399.0]);

        write_f16x8(&mut s, v(4), [1.0; 8]);
        write_f16x8(&mut s, v(5), [2.0; 8]);
        write_f16x8(&mut s, v(6), [0.5; 8]);
        exec(
            &mut s,
            &mut m,
            &NeonInst::fmla_vec(v(4), v(5), v(6), NeonArrangement::H8),
        );
        assert_eq!(read_f16x8(&s, v(4)), [2.0; 8]);
    }

    #[test]
    fn fmla_by_element_broadcasts() {
        let (mut s, mut m) = setup();
        s.set_v_f32(v(4), [0.0; 4]);
        s.set_v_f32(v(28), [1.0, 2.0, 3.0, 4.0]);
        s.set_v_f32(v(29), [5.0, 7.0, 9.0, 11.0]);
        exec(
            &mut s,
            &mut m,
            &NeonInst::fmla_elem(v(4), v(28), v(29), 1, NeonArrangement::S4),
        );
        assert_eq!(s.v_f32(v(4)), [7.0, 14.0, 21.0, 28.0]);
    }

    #[test]
    fn bfmmla_matrix_product() {
        let (mut s, mut m) = setup();
        // A = [[1,2,3,4],[5,6,7,8]] (2x4), B = same; C[i][j] = dot(A_i, B_j).
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let mut bytes = [0u8; 16];
        for (i, v) in a.iter().enumerate() {
            bytes[i * 2..i * 2 + 2]
                .copy_from_slice(&crate::exec::fp::f32_to_bf16(*v).to_le_bytes());
        }
        s.set_v(v(1), bytes);
        s.set_v(v(2), bytes);
        exec(
            &mut s,
            &mut m,
            &NeonInst::Bfmmla {
                vd: v(0),
                vn: v(1),
                vm: v(2),
            },
        );
        let c = s.v_f32(v(0));
        assert_eq!(c, [30.0, 70.0, 70.0, 174.0]);
    }

    #[test]
    fn loads_and_stores() {
        let (mut s, mut m) = setup();
        let data: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let addr = m.alloc_f32(&data, 64);
        s.set_x(x(0), addr);
        exec(
            &mut s,
            &mut m,
            &NeonInst::LdrQ {
                vt: v(0),
                rn: x(0),
                imm: 0,
            },
        );
        assert_eq!(s.v_f32(v(0)), [0.0, 1.0, 2.0, 3.0]);
        exec(
            &mut s,
            &mut m,
            &NeonInst::LdpQ {
                vt1: v(1),
                vt2: v(2),
                rn: x(0),
                imm: 0,
            },
        );
        assert_eq!(s.v_f32(v(2)), [4.0, 5.0, 6.0, 7.0]);
        // Store back shifted by 16 bytes.
        let dst = m.alloc_f32_zeroed(12, 64);
        s.set_x(x(1), dst);
        exec(
            &mut s,
            &mut m,
            &NeonInst::StrQ {
                vt: v(2),
                rn: x(1),
                imm: 0,
            },
        );
        exec(
            &mut s,
            &mut m,
            &NeonInst::StpQ {
                vt1: v(0),
                vt2: v(2),
                rn: x(1),
                imm: 16,
            },
        );
        assert_eq!(m.read_f32_slice(dst, 4), vec![4.0, 5.0, 6.0, 7.0]);
        assert_eq!(m.read_f32_slice(dst + 16, 4), vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(m.read_f32_slice(dst + 32, 4), vec![4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn dup_and_movi() {
        let (mut s, mut m) = setup();
        s.set_v_f32(v(9), [1.5, 2.5, 3.5, 4.5]);
        exec(
            &mut s,
            &mut m,
            &NeonInst::DupElem {
                vd: v(10),
                vn: v(9),
                index: 2,
                arrangement: NeonArrangement::S4,
            },
        );
        assert_eq!(s.v_f32(v(10)), [3.5; 4]);
        exec(
            &mut s,
            &mut m,
            &NeonInst::MoviZero {
                vd: v(10),
                arrangement: NeonArrangement::S4,
            },
        );
        assert_eq!(s.v_f32(v(10)), [0.0; 4]);
    }
}
