//! Functional semantics of the SME / SME2 instructions.

use crate::exec::fp::{bf16_to_f32, f16_to_f32};
use crate::mem::Memory;
use crate::state::CoreState;
use sme_isa::inst::sme::SmeInst;
use sme_isa::regs::{PReg, TileSliceDir, ZReg};
use sme_isa::types::ElementType;

fn tile_dim(state: &CoreState, elem: ElementType) -> usize {
    state.vl_bytes() / elem.bytes() as usize
}

/// Read lane `i` of a Z register as `f32`, interpreting pairs of 16-bit
/// inputs for the widening forms.
fn z_f32_lane(state: &CoreState, r: ZReg, lane: usize) -> f32 {
    let bytes = state.z(r);
    f32::from_le_bytes(bytes[lane * 4..lane * 4 + 4].try_into().unwrap())
}

fn z_f64_lane(state: &CoreState, r: ZReg, lane: usize) -> f64 {
    let bytes = state.z(r);
    f64::from_le_bytes(bytes[lane * 8..lane * 8 + 8].try_into().unwrap())
}

fn z_u16_lane(state: &CoreState, r: ZReg, lane: usize) -> u16 {
    let bytes = state.z(r);
    u16::from_le_bytes(bytes[lane * 2..lane * 2 + 2].try_into().unwrap())
}

fn z_i8_lane(state: &CoreState, r: ZReg, lane: usize) -> i8 {
    state.z(r)[lane] as i8
}

fn z_i16_lane(state: &CoreState, r: ZReg, lane: usize) -> i16 {
    let bytes = state.z(r);
    i16::from_le_bytes(bytes[lane * 2..lane * 2 + 2].try_into().unwrap())
}

/// The ZA array-vector index selected by `[w<s>, offset]` addressing.
fn za_vector_index(state: &CoreState, rs: sme_isa::regs::XReg, offset: u8) -> usize {
    let dim = state.vl_bytes();
    ((state.x(rs) as usize) + offset as usize) % dim
}

/// Execute one SME instruction.
pub fn exec(state: &mut CoreState, mem: &mut Memory, inst: &SmeInst) {
    match *inst {
        SmeInst::Smstart { za_only } => {
            if !za_only {
                state.streaming = true;
            }
            state.za_enabled = true;
        }
        SmeInst::Smstop { za_only } => {
            if !za_only {
                state.streaming = false;
            }
            state.za_enabled = false;
        }
        SmeInst::Fmopa {
            tile,
            elem,
            pn,
            pm,
            zn,
            zm,
        } => match elem {
            ElementType::F64 => {
                let dim = tile_dim(state, ElementType::F64);
                for r in 0..dim {
                    if !state.p_lane(pn, ElementType::F64, r) {
                        continue;
                    }
                    let a = z_f64_lane(state, zn, r);
                    for c in 0..dim {
                        if !state.p_lane(pm, ElementType::F64, c) {
                            continue;
                        }
                        let b = z_f64_lane(state, zm, c);
                        let cur = state.za_f64(tile, r, c);
                        state.set_za_f64(tile, r, c, cur + a * b);
                    }
                }
            }
            _ => {
                let dim = tile_dim(state, ElementType::F32);
                for r in 0..dim {
                    if !state.p_lane(pn, ElementType::F32, r) {
                        continue;
                    }
                    let a = z_f32_lane(state, zn, r);
                    for c in 0..dim {
                        if !state.p_lane(pm, ElementType::F32, c) {
                            continue;
                        }
                        let b = z_f32_lane(state, zm, c);
                        let cur = state.za_f32(tile, r, c);
                        state.set_za_f32(tile, r, c, cur + a * b);
                    }
                }
            }
        },
        SmeInst::FmopaWide {
            tile,
            from,
            pn,
            pm,
            zn,
            zm,
        } => {
            // Widening 2-way sum of outer products into an FP32 tile:
            // ZA[r][c] += sum_i a[2r+i] * b[2c+i].
            let dim = tile_dim(state, ElementType::F32);
            let convert = |bits: u16| -> f32 {
                if from == ElementType::BF16 {
                    bf16_to_f32(bits)
                } else {
                    f16_to_f32(bits)
                }
            };
            for r in 0..dim {
                if !state.p_lane(pn, ElementType::F32, r) {
                    continue;
                }
                for c in 0..dim {
                    if !state.p_lane(pm, ElementType::F32, c) {
                        continue;
                    }
                    let mut acc = state.za_f32(tile, r, c);
                    for i in 0..2 {
                        let a = convert(z_u16_lane(state, zn, 2 * r + i));
                        let b = convert(z_u16_lane(state, zm, 2 * c + i));
                        acc += a * b;
                    }
                    state.set_za_f32(tile, r, c, acc);
                }
            }
        }
        SmeInst::Smopa {
            tile,
            from,
            pn,
            pm,
            zn,
            zm,
        } => {
            let dim = tile_dim(state, ElementType::I32);
            let way = if from == ElementType::I8 { 4 } else { 2 };
            for r in 0..dim {
                if !state.p_lane(pn, ElementType::I32, r) {
                    continue;
                }
                for c in 0..dim {
                    if !state.p_lane(pm, ElementType::I32, c) {
                        continue;
                    }
                    let mut acc = state.za_i32(tile, r, c);
                    for i in 0..way {
                        let (a, b) = if from == ElementType::I8 {
                            (
                                z_i8_lane(state, zn, way * r + i) as i32,
                                z_i8_lane(state, zm, way * c + i) as i32,
                            )
                        } else {
                            (
                                z_i16_lane(state, zn, way * r + i) as i32,
                                z_i16_lane(state, zm, way * c + i) as i32,
                            )
                        };
                        acc = acc.wrapping_add(a.wrapping_mul(b));
                    }
                    state.set_za_i32(tile, r, c, acc);
                }
            }
        }
        SmeInst::MovaToTile {
            tile,
            dir,
            rs,
            offset,
            zt,
            count,
        } => {
            let esz = tile.elem.bytes() as usize;
            let dim = tile_dim(state, tile.elem);
            let base_slice = (state.x(rs) as usize + offset as usize) % dim;
            for k in 0..count as usize {
                let slice = (base_slice + k) % dim;
                let data = state.z(zt.offset(k as u8)).to_vec();
                match dir {
                    TileSliceDir::Horizontal => {
                        let vec_idx = state.za_tile_row_vector(tile.index, tile.elem, slice);
                        state.set_za_vector(vec_idx, &data);
                    }
                    TileSliceDir::Vertical => {
                        for r in 0..dim {
                            let off = state.za_elem_offset(tile.index, tile.elem, r, slice);
                            // Element r of the source vector becomes tile
                            // element (r, slice).
                            let src = data[r * esz..r * esz + esz].to_vec();
                            state.set_za_bytes(off, &src);
                        }
                    }
                }
            }
        }
        SmeInst::MovaFromTile {
            tile,
            dir,
            rs,
            offset,
            zt,
            count,
        } => {
            let esz = tile.elem.bytes() as usize;
            let dim = tile_dim(state, tile.elem);
            let base_slice = (state.x(rs) as usize + offset as usize) % dim;
            for k in 0..count as usize {
                let slice = (base_slice + k) % dim;
                let mut data = vec![0u8; state.vl_bytes()];
                match dir {
                    TileSliceDir::Horizontal => {
                        let vec_idx = state.za_tile_row_vector(tile.index, tile.elem, slice);
                        data.copy_from_slice(state.za_vector(vec_idx));
                    }
                    TileSliceDir::Vertical => {
                        for r in 0..dim {
                            let off = state.za_elem_offset(tile.index, tile.elem, r, slice);
                            data[r * esz..r * esz + esz]
                                .copy_from_slice(&state.za()[off..off + esz]);
                        }
                    }
                }
                state.set_z(zt.offset(k as u8), &data);
            }
        }
        SmeInst::LdrZa { rs, offset, rn } => {
            let idx = za_vector_index(state, rs, offset);
            let addr = state.x(rn) + offset as u64 * state.vl_bytes() as u64;
            let bytes = mem.read_bytes(addr, state.vl_bytes()).to_vec();
            state.set_za_vector(idx, &bytes);
        }
        SmeInst::StrZa { rs, offset, rn } => {
            let idx = za_vector_index(state, rs, offset);
            let addr = state.x(rn) + offset as u64 * state.vl_bytes() as u64;
            let bytes = state.za_vector(idx).to_vec();
            mem.write_bytes(addr, &bytes);
        }
        SmeInst::ZeroZa { mask } => {
            for d in 0..8u8 {
                if mask & (1 << d) != 0 {
                    state.zero_za_d_tile(d);
                }
            }
        }
        SmeInst::FmlaZaVectors {
            elem,
            vgx,
            rv,
            offset,
            zn,
            zm,
        } => {
            // The ZA array is divided into `vgx` equal parts; member k of the
            // group is the vector at (w + offset) mod (dim/vgx) within part k.
            let dim = state.vl_bytes();
            let part = dim / vgx as usize;
            let sel = (state.x(rv) as usize + offset as usize) % part;
            for k in 0..vgx as usize {
                let vec_idx = k * part + sel;
                let mut vec = state.za_vector(vec_idx).to_vec();
                match elem {
                    ElementType::F64 => {
                        let lanes = state.vl_bytes() / 8;
                        for lane in 0..lanes {
                            let a = z_f64_lane(state, zn.offset(k as u8), lane);
                            let b = z_f64_lane(state, zm, lane);
                            let cur =
                                f64::from_le_bytes(vec[lane * 8..lane * 8 + 8].try_into().unwrap());
                            vec[lane * 8..lane * 8 + 8]
                                .copy_from_slice(&(cur + a * b).to_le_bytes());
                        }
                    }
                    _ => {
                        let lanes = state.vl_bytes() / 4;
                        for lane in 0..lanes {
                            let a = z_f32_lane(state, zn.offset(k as u8), lane);
                            let b = z_f32_lane(state, zm, lane);
                            let cur =
                                f32::from_le_bytes(vec[lane * 4..lane * 4 + 4].try_into().unwrap());
                            vec[lane * 4..lane * 4 + 4]
                                .copy_from_slice(&(cur + a * b).to_le_bytes());
                        }
                    }
                }
                state.set_za_vector(vec_idx, &vec);
            }
        }
    }
}

/// Set every element of each listed predicate register (test helper shared
/// with the integration suites).
pub fn p_all(state: &mut CoreState, preds: &[PReg]) {
    for p in preds {
        state.set_p_all(*p, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_isa::regs::short::*;
    use sme_isa::regs::ZaTile;
    use sme_isa::types::StreamingVectorLength;

    fn setup() -> (CoreState, Memory) {
        let mut s = CoreState::new(StreamingVectorLength::M4);
        p_all(&mut s, &[p(0), p(1)]);
        (s, Memory::new())
    }

    #[test]
    fn smstart_smstop_toggle_modes() {
        let (mut s, mut m) = setup();
        exec(&mut s, &mut m, &SmeInst::Smstart { za_only: false });
        assert!(s.streaming && s.za_enabled);
        exec(&mut s, &mut m, &SmeInst::Smstop { za_only: true });
        assert!(s.streaming && !s.za_enabled);
        exec(&mut s, &mut m, &SmeInst::Smstop { za_only: false });
        assert!(!s.streaming);
    }

    #[test]
    fn fmopa_f32_is_an_outer_product() {
        let (mut s, mut m) = setup();
        let a: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..16).map(|i| (i as f32) * 0.5).collect();
        s.set_z_f32(z(0), &a);
        s.set_z_f32(z(1), &b);
        exec(
            &mut s,
            &mut m,
            &SmeInst::fmopa_f32(2, p(0), p(1), z(0), z(1)),
        );
        for (r, &av) in a.iter().enumerate() {
            for (c, &bv) in b.iter().enumerate() {
                assert_eq!(s.za_f32(2, r, c), av * bv, "({r},{c})");
            }
        }
        // Accumulation: running it again doubles every element.
        exec(
            &mut s,
            &mut m,
            &SmeInst::fmopa_f32(2, p(0), p(1), z(0), z(1)),
        );
        assert_eq!(s.za_f32(2, 3, 5), 2.0 * a[3] * b[5]);
    }

    #[test]
    fn fmopa_respects_predicates() {
        let (mut s, mut m) = setup();
        s.set_z_f32(z(0), &[1.0; 16]);
        s.set_z_f32(z(1), &[1.0; 16]);
        s.set_p_first(p(2), ElementType::F32, 3); // rows
        s.set_p_first(p(3), ElementType::F32, 2); // columns
        exec(
            &mut s,
            &mut m,
            &SmeInst::fmopa_f32(0, p(2), p(3), z(0), z(1)),
        );
        assert_eq!(s.za_f32(0, 2, 1), 1.0);
        assert_eq!(s.za_f32(0, 3, 1), 0.0, "masked row");
        assert_eq!(s.za_f32(0, 2, 2), 0.0, "masked column");
    }

    #[test]
    fn fmopa_f64_tile() {
        let (mut s, mut m) = setup();
        let a: Vec<f64> = (0..8).map(|i| i as f64 + 1.0).collect();
        let b: Vec<f64> = (0..8).map(|i| 2.0 * i as f64).collect();
        s.set_z_f64(z(4), &a);
        s.set_z_f64(z(5), &b);
        exec(
            &mut s,
            &mut m,
            &SmeInst::fmopa_f64(7, p(0), p(1), z(4), z(5)),
        );
        assert_eq!(s.za_f64(7, 2, 3), 3.0 * 6.0);
    }

    #[test]
    fn widening_bf16_outer_product() {
        let (mut s, mut m) = setup();
        // 32 BF16 values per register: element pairs (2r, 2r+1).
        let mut zn_bytes = vec![0u8; 64];
        let mut zm_bytes = vec![0u8; 64];
        for i in 0..32 {
            let a = crate::exec::fp::f32_to_bf16(1.0);
            let b = crate::exec::fp::f32_to_bf16(2.0);
            zn_bytes[i * 2..i * 2 + 2].copy_from_slice(&a.to_le_bytes());
            zm_bytes[i * 2..i * 2 + 2].copy_from_slice(&b.to_le_bytes());
        }
        s.set_z(z(0), &zn_bytes);
        s.set_z(z(1), &zm_bytes);
        exec(&mut s, &mut m, &SmeInst::bfmopa(1, p(0), p(1), z(0), z(1)));
        // Each element: sum over 2-way dot of 1.0 * 2.0 = 4.0.
        assert_eq!(s.za_f32(1, 5, 9), 4.0);
    }

    #[test]
    fn integer_smopa_i8() {
        let (mut s, mut m) = setup();
        let zn_bytes: Vec<u8> = (0..64u32).map(|i| (i % 5) as u8).collect();
        let zm_bytes: Vec<u8> = (0..64u32).map(|_| 2u8).collect();
        s.set_z(z(0), &zn_bytes);
        s.set_z(z(1), &zm_bytes);
        exec(
            &mut s,
            &mut m,
            &SmeInst::smopa_i8(0, p(0), p(1), z(0), z(1)),
        );
        // Row r uses a[4r..4r+4]; column c uses b[4c..4c+4] = all 2.
        let r = 3usize;
        let expected: i32 = (0..4).map(|i| ((4 * r + i) % 5) as i32 * 2).sum();
        assert_eq!(s.za_i32(0, r, 7), expected);
    }

    #[test]
    fn mova_roundtrip_transposes_via_views() {
        // The Lst. 5 idiom: write through the horizontal view, read back
        // through the vertical view — the result is the transpose.
        let (mut s, mut m) = setup();
        s.set_x(x(12), 0);
        // Fill registers z0-z15 with distinct row values.
        for r in 0..16u8 {
            let row: Vec<f32> = (0..16).map(|c| (r as f32) * 100.0 + c as f32).collect();
            s.set_z_f32(z(r), &row);
        }
        for group in 0..4u8 {
            exec(
                &mut s,
                &mut m,
                &SmeInst::MovaToTile {
                    tile: ZaTile::s(0),
                    dir: TileSliceDir::Horizontal,
                    rs: x(12),
                    offset: group * 4,
                    zt: z(group * 4),
                    count: 4,
                },
            );
        }
        for group in 0..4u8 {
            exec(
                &mut s,
                &mut m,
                &SmeInst::MovaFromTile {
                    tile: ZaTile::s(0),
                    dir: TileSliceDir::Vertical,
                    rs: x(12),
                    offset: group * 4,
                    zt: z(16 + group * 4),
                    count: 4,
                },
            );
        }
        // Register z16+c now holds column c of the original data, i.e. the
        // transposed row.
        for c in 0..16u8 {
            let col = s.z_f32(z(16 + c));
            for (r, &v) in col.iter().enumerate().take(16) {
                assert_eq!(v, (r as f32) * 100.0 + c as f32, "({r},{c})");
            }
        }
    }

    #[test]
    fn ldr_str_za_array_vectors() {
        let (mut s, mut m) = setup();
        let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let src = m.alloc_f32(&data, 128);
        let dst = m.alloc_f32_zeroed(32, 128);
        s.set_x(x(12), 5);
        s.set_x(x(0), src);
        s.set_x(x(1), dst);
        exec(
            &mut s,
            &mut m,
            &SmeInst::LdrZa {
                rs: x(12),
                offset: 0,
                rn: x(0),
            },
        );
        exec(
            &mut s,
            &mut m,
            &SmeInst::LdrZa {
                rs: x(12),
                offset: 1,
                rn: x(0),
            },
        );
        let first = f32::from_le_bytes(s.za_vector(5)[0..4].try_into().unwrap());
        assert_eq!(first, 0.0);
        exec(
            &mut s,
            &mut m,
            &SmeInst::StrZa {
                rs: x(12),
                offset: 0,
                rn: x(1),
            },
        );
        exec(
            &mut s,
            &mut m,
            &SmeInst::StrZa {
                rs: x(12),
                offset: 1,
                rn: x(1),
            },
        );
        assert_eq!(m.read_f32_slice(dst, 32), data);
    }

    #[test]
    fn zero_za_mask() {
        let (mut s, mut m) = setup();
        s.set_za_f32(0, 3, 3, 7.0);
        s.set_za_f32(1, 3, 3, 8.0);
        // Zero only za0.s (granules 0 and 4).
        exec(
            &mut s,
            &mut m,
            &SmeInst::ZeroZa {
                mask: SmeInst::zero_mask_for_s_tiles(&[0]),
            },
        );
        assert_eq!(s.za_f32(0, 3, 3), 0.0);
        assert_eq!(s.za_f32(1, 3, 3), 8.0);
    }

    #[test]
    fn sme2_multi_vector_fmla() {
        let (mut s, mut m) = setup();
        s.set_x(x(8), 0);
        for k in 0..4u8 {
            s.set_z_f32(z(k), &[k as f32 + 1.0; 16]);
        }
        s.set_z_f32(z(4), &[2.0; 16]);
        exec(
            &mut s,
            &mut m,
            &SmeInst::FmlaZaVectors {
                elem: ElementType::F32,
                vgx: 4,
                rv: x(8),
                offset: 0,
                zn: z(0),
                zm: z(4),
            },
        );
        // Group member k is ZA array vector k*16 (part size 64/4 = 16).
        for k in 0..4usize {
            let vec = s.za_vector(k * 16);
            let first = f32::from_le_bytes(vec[0..4].try_into().unwrap());
            assert_eq!(first, (k as f32 + 1.0) * 2.0);
        }
    }
}
