//! Half-precision (IEEE 754 binary16) and bfloat16 conversion helpers used
//! by the functional executor for widening instructions.

/// Convert an IEEE 754 binary16 value to `f32`.
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = ((bits >> 15) & 1) as u32;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let frac = (bits & 0x3ff) as u32;
    let out = if exp == 0 {
        if frac == 0 {
            sign << 31
        } else {
            // Subnormal: normalise.
            let mut e = 127 - 15 + 1;
            let mut f = frac;
            while f & 0x400 == 0 {
                f <<= 1;
                e -= 1;
            }
            (sign << 31) | ((e as u32) << 23) | ((f & 0x3ff) << 13)
        }
    } else if exp == 0x1f {
        (sign << 31) | (0xff << 23) | (frac << 13)
    } else {
        (sign << 31) | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(out)
}

/// Convert an `f32` to IEEE 754 binary16 (round to nearest even, clamping
/// overflow to infinity).
pub fn f32_to_f16(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 31) & 1) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x7f_ffff;
    if exp == 0xff {
        // Inf / NaN.
        let f = if frac != 0 { 0x200 } else { 0 };
        return (sign << 15) | 0x7c00 | f;
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return (sign << 15) | 0x7c00; // overflow -> inf
    }
    if unbiased < -24 {
        return sign << 15; // underflow -> zero
    }
    if unbiased < -14 {
        // Subnormal result.
        let shift = (-14 - unbiased) as u32;
        let mant = (frac | 0x80_0000) >> (13 + shift);
        return (sign << 15) | mant as u16;
    }
    let half_exp = (unbiased + 15) as u32;
    let mant = frac >> 13;
    // Round to nearest even.
    let round_bit = (frac >> 12) & 1;
    let sticky = frac & 0xfff;
    let mut out = (sign as u32) << 15 | half_exp << 10 | mant;
    if round_bit == 1 && (sticky != 0 || mant & 1 == 1) {
        out += 1;
    }
    out as u16
}

/// Convert a bfloat16 value to `f32`.
pub fn bf16_to_f32(bits: u16) -> f32 {
    f32::from_bits((bits as u32) << 16)
}

/// Convert an `f32` to bfloat16 (round to nearest even).
pub fn f32_to_bf16(value: f32) -> u16 {
    let bits = value.to_bits();
    if value.is_nan() {
        return ((bits >> 16) as u16) | 0x40;
    }
    let round_bit = (bits >> 15) & 1;
    let sticky = bits & 0x7fff;
    let mut out = (bits >> 16) as u16;
    if round_bit == 1 && (sticky != 0 || out & 1 == 1) {
        out = out.wrapping_add(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, -0.375, 65504.0] {
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "value {v}");
        }
    }

    #[test]
    fn f16_known_encodings() {
        assert_eq!(f32_to_f16(1.0), 0x3c00);
        assert_eq!(f32_to_f16(-2.0), 0xc000);
        assert_eq!(f16_to_f32(0x3c00), 1.0);
        assert_eq!(f16_to_f32(0x7c00), f32::INFINITY);
        assert_eq!(f16_to_f32(0xfc00), f32::NEG_INFINITY);
    }

    #[test]
    fn f16_overflow_and_underflow() {
        assert_eq!(f16_to_f32(f32_to_f16(1.0e6)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(1.0e-10)), 0.0);
        // Subnormal range survives approximately.
        let tiny = 3.0e-7f32;
        let rt = f16_to_f32(f32_to_f16(tiny));
        assert!((rt - tiny).abs() / tiny < 0.1);
    }

    #[test]
    fn f16_nan_propagates() {
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
    }

    #[test]
    fn bf16_roundtrip() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 3.140625, -100.0] {
            assert_eq!(bf16_to_f32(f32_to_bf16(v)), v, "value {v}");
        }
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
        // bf16 rounding: 1 + 2^-9 rounds to nearest even.
        let v = 1.0 + 2f32.powi(-9);
        let rt = bf16_to_f32(f32_to_bf16(v));
        assert!((rt - v).abs() <= 2f32.powi(-8));
    }
}
