//! Functional semantics of the A64 base instructions.

use crate::state::CoreState;
use sme_isa::inst::scalar::{ScalarInst, ShiftOp};
use sme_isa::types::Cond;

/// Control-flow outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Fall through to the next instruction.
    Next,
    /// Branch by the given instruction offset (relative to the branch).
    Branch(i32),
    /// Return from the kernel.
    Return,
}

fn shifted(value: u64, shift: &Option<ShiftOp>) -> u64 {
    match shift {
        None => value,
        Some(s) => value << s.amount(),
    }
}

fn set_sub_flags(state: &mut CoreState, a: u64, b: u64) {
    let result = a.wrapping_sub(b);
    state.flags.n = (result as i64) < 0;
    state.flags.z = result == 0;
    state.flags.c = a >= b;
    state.flags.v = ((a ^ b) & (a ^ result)) >> 63 == 1;
}

fn cond_holds(state: &CoreState, cond: Cond) -> bool {
    let f = state.flags;
    match cond {
        Cond::Eq => f.z,
        Cond::Ne => !f.z,
        Cond::Hs => f.c,
        Cond::Lo => !f.c,
        Cond::Ge => f.n == f.v,
        Cond::Lt => f.n != f.v,
        Cond::Gt => !f.z && f.n == f.v,
        Cond::Le => f.z || f.n != f.v,
    }
}

/// Execute one scalar instruction.
pub fn exec(state: &mut CoreState, inst: &ScalarInst) -> Outcome {
    match *inst {
        ScalarInst::MovZ { rd, imm16, hw } => {
            state.set_x(rd, (imm16 as u64) << (16 * hw as u64));
            Outcome::Next
        }
        ScalarInst::MovK { rd, imm16, hw } => {
            let shift = 16 * hw as u64;
            let mask = !(0xffffu64 << shift);
            let value = (state.x(rd) & mask) | ((imm16 as u64) << shift);
            state.set_x(rd, value);
            Outcome::Next
        }
        ScalarInst::MovReg { rd, rn } => {
            let v = state.x(rn);
            state.set_x(rd, v);
            Outcome::Next
        }
        ScalarInst::AddImm {
            rd,
            rn,
            imm12,
            shift12,
        } => {
            let imm = (imm12 as u64) << if shift12 { 12 } else { 0 };
            let v = state.x(rn).wrapping_add(imm);
            state.set_x(rd, v);
            Outcome::Next
        }
        ScalarInst::SubImm {
            rd,
            rn,
            imm12,
            shift12,
        } => {
            let imm = (imm12 as u64) << if shift12 { 12 } else { 0 };
            let v = state.x(rn).wrapping_sub(imm);
            state.set_x(rd, v);
            Outcome::Next
        }
        ScalarInst::SubsImm { rd, rn, imm12 } => {
            let a = state.x(rn);
            let b = imm12 as u64;
            set_sub_flags(state, a, b);
            state.set_x(rd, a.wrapping_sub(b));
            Outcome::Next
        }
        ScalarInst::AddReg {
            rd,
            rn,
            rm,
            ref shift,
        } => {
            let v = state.x(rn).wrapping_add(shifted(state.x(rm), shift));
            state.set_x(rd, v);
            Outcome::Next
        }
        ScalarInst::SubReg {
            rd,
            rn,
            rm,
            ref shift,
        } => {
            let v = state.x(rn).wrapping_sub(shifted(state.x(rm), shift));
            state.set_x(rd, v);
            Outcome::Next
        }
        ScalarInst::Madd { rd, rn, rm, ra } => {
            let v = state
                .x(ra)
                .wrapping_add(state.x(rn).wrapping_mul(state.x(rm)));
            state.set_x(rd, v);
            Outcome::Next
        }
        ScalarInst::LslImm { rd, rn, shift } => {
            let v = state.x(rn) << shift;
            state.set_x(rd, v);
            Outcome::Next
        }
        ScalarInst::CmpReg { rn, rm } => {
            set_sub_flags(state, state.x(rn), state.x(rm));
            Outcome::Next
        }
        ScalarInst::CmpImm { rn, imm12 } => {
            set_sub_flags(state, state.x(rn), imm12 as u64);
            Outcome::Next
        }
        ScalarInst::Cbnz { rn, target } => {
            if state.x(rn) != 0 {
                Outcome::Branch(target.offset())
            } else {
                Outcome::Next
            }
        }
        ScalarInst::Cbz { rn, target } => {
            if state.x(rn) == 0 {
                Outcome::Branch(target.offset())
            } else {
                Outcome::Next
            }
        }
        ScalarInst::B { target } => Outcome::Branch(target.offset()),
        ScalarInst::BCond { cond, target } => {
            if cond_holds(state, cond) {
                Outcome::Branch(target.offset())
            } else {
                Outcome::Next
            }
        }
        ScalarInst::Nop => Outcome::Next,
        ScalarInst::Ret => Outcome::Return,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_isa::inst::scalar::BranchTarget;
    use sme_isa::regs::short::*;
    use sme_isa::types::StreamingVectorLength;

    fn state() -> CoreState {
        CoreState::new(StreamingVectorLength::M4)
    }

    #[test]
    fn mov_sequences_build_64_bit_values() {
        let mut s = state();
        exec(
            &mut s,
            &ScalarInst::MovZ {
                rd: x(0),
                imm16: 0xbeef,
                hw: 0,
            },
        );
        exec(
            &mut s,
            &ScalarInst::MovK {
                rd: x(0),
                imm16: 0xdead,
                hw: 1,
            },
        );
        exec(
            &mut s,
            &ScalarInst::MovK {
                rd: x(0),
                imm16: 0x1234,
                hw: 3,
            },
        );
        assert_eq!(s.x(x(0)), 0x1234_0000_dead_beef);
    }

    #[test]
    fn arithmetic() {
        let mut s = state();
        s.set_x(x(1), 100);
        s.set_x(x(2), 7);
        exec(
            &mut s,
            &ScalarInst::AddReg {
                rd: x(0),
                rn: x(1),
                rm: x(2),
                shift: None,
            },
        );
        assert_eq!(s.x(x(0)), 107);
        exec(
            &mut s,
            &ScalarInst::AddReg {
                rd: x(0),
                rn: x(1),
                rm: x(2),
                shift: Some(ShiftOp::Lsl(2)),
            },
        );
        assert_eq!(s.x(x(0)), 128);
        exec(
            &mut s,
            &ScalarInst::SubImm {
                rd: x(0),
                rn: x(0),
                imm12: 1,
                shift12: false,
            },
        );
        assert_eq!(s.x(x(0)), 127);
        exec(
            &mut s,
            &ScalarInst::AddImm {
                rd: x(0),
                rn: x(0),
                imm12: 2,
                shift12: true,
            },
        );
        assert_eq!(s.x(x(0)), 127 + (2 << 12));
        exec(
            &mut s,
            &ScalarInst::Madd {
                rd: x(3),
                rn: x(1),
                rm: x(2),
                ra: x(0),
            },
        );
        assert_eq!(s.x(x(3)), s.x(x(0)) + 700);
        exec(
            &mut s,
            &ScalarInst::LslImm {
                rd: x(4),
                rn: x(2),
                shift: 4,
            },
        );
        assert_eq!(s.x(x(4)), 112);
    }

    #[test]
    fn loop_branching_with_cbnz() {
        let mut s = state();
        s.set_x(x(0), 3);
        let dec = ScalarInst::SubImm {
            rd: x(0),
            rn: x(0),
            imm12: 1,
            shift12: false,
        };
        let branch = ScalarInst::Cbnz {
            rn: x(0),
            target: BranchTarget::Offset(-1),
        };
        let mut taken = 0;
        loop {
            exec(&mut s, &dec);
            match exec(&mut s, &branch) {
                Outcome::Branch(_) => taken += 1,
                Outcome::Next => break,
                Outcome::Return => unreachable!(),
            }
        }
        assert_eq!(taken, 2);
        assert_eq!(s.x(x(0)), 0);
    }

    #[test]
    fn conditional_branches_follow_flags() {
        let mut s = state();
        s.set_x(x(1), 5);
        exec(&mut s, &ScalarInst::CmpImm { rn: x(1), imm12: 5 });
        assert!(s.flags.z);
        assert_eq!(
            exec(
                &mut s,
                &ScalarInst::BCond {
                    cond: Cond::Eq,
                    target: BranchTarget::Offset(10)
                }
            ),
            Outcome::Branch(10)
        );
        assert_eq!(
            exec(
                &mut s,
                &ScalarInst::BCond {
                    cond: Cond::Ne,
                    target: BranchTarget::Offset(10)
                }
            ),
            Outcome::Next
        );
        exec(&mut s, &ScalarInst::CmpImm { rn: x(1), imm12: 9 });
        assert_eq!(
            exec(
                &mut s,
                &ScalarInst::BCond {
                    cond: Cond::Lt,
                    target: BranchTarget::Offset(3)
                }
            ),
            Outcome::Branch(3)
        );
        s.set_x(x(2), 10);
        exec(&mut s, &ScalarInst::CmpReg { rn: x(2), rm: x(1) });
        assert_eq!(
            exec(
                &mut s,
                &ScalarInst::BCond {
                    cond: Cond::Gt,
                    target: BranchTarget::Offset(3)
                }
            ),
            Outcome::Branch(3)
        );
    }

    #[test]
    fn subs_sets_flags_and_result() {
        let mut s = state();
        s.set_x(x(8), 1);
        exec(
            &mut s,
            &ScalarInst::SubsImm {
                rd: x(8),
                rn: x(8),
                imm12: 1,
            },
        );
        assert_eq!(s.x(x(8)), 0);
        assert!(s.flags.z);
        assert!(s.flags.c);
    }

    #[test]
    fn ret_and_b() {
        let mut s = state();
        assert_eq!(exec(&mut s, &ScalarInst::Ret), Outcome::Return);
        assert_eq!(
            exec(
                &mut s,
                &ScalarInst::B {
                    target: BranchTarget::Offset(-4)
                }
            ),
            Outcome::Branch(-4)
        );
        assert_eq!(exec(&mut s, &ScalarInst::Nop), Outcome::Next);
    }
}
