//! The simulator driver: functional execution of programs with optional
//! timing.

pub mod fp;
pub mod neon;
pub mod scalar;
pub mod sme;
pub mod sve;

pub use scalar::Outcome;

use crate::config::{CoreKind, MachineConfig};
use crate::counters::ExecStats;
use crate::mem::Memory;
use crate::state::CoreState;
use crate::timing::{MemModel, OpKind, Scoreboard};
use sme_isa::inst::{Inst, NeonInst, SmeInst, SveInst};
use sme_isa::regs::XReg;
use sme_isa::Program;

/// How much of the architectural semantics to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Execute every instruction's full semantics (data is correct).
    Functional,
    /// Execute scalar control flow and address arithmetic only; skip vector
    /// and matrix data movement/arithmetic. Counters and timing are exact,
    /// data values are not. Used for large parameter sweeps where only the
    /// modelled performance is of interest.
    TimingOnly,
}

/// Options controlling one simulation run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Whether to run the timing model alongside functional execution.
    pub timing: bool,
    /// Functional or timing-only execution.
    pub mode: ExecMode,
    /// Pin the memory model's working-set size instead of tracking touched
    /// cache lines (used by the bandwidth sweeps).
    pub working_set_hint: Option<u64>,
    /// Safety limit on retired instructions.
    pub max_instructions: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            timing: true,
            mode: ExecMode::Functional,
            working_set_hint: None,
            max_instructions: 2_000_000_000,
        }
    }
}

impl RunOptions {
    /// Functional execution without timing (fast correctness checks).
    pub fn functional_only() -> Self {
        RunOptions {
            timing: false,
            ..Default::default()
        }
    }

    /// Timing-only execution (fast performance sweeps).
    pub fn timing_only() -> Self {
        RunOptions {
            mode: ExecMode::TimingOnly,
            ..Default::default()
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Counters and modelled timing.
    pub stats: ExecStats,
    /// The kernel's return value (X0 at `ret`).
    pub return_value: u64,
}

/// A single-core simulator instance: configuration, architectural state and
/// memory.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MachineConfig,
    core_kind: CoreKind,
    /// Architectural state (public so harnesses can pre-set registers and
    /// inspect results).
    pub state: CoreState,
    /// Simulated memory (public so harnesses can allocate operands).
    pub mem: Memory,
}

impl Simulator {
    /// Create a simulator for the given machine and core kind.
    pub fn new(config: MachineConfig, core_kind: CoreKind) -> Self {
        let state = CoreState::new(config.svl);
        Simulator {
            config,
            core_kind,
            state,
            mem: Memory::new(),
        }
    }

    /// Create an M4 performance-core simulator (the common case).
    pub fn m4_performance() -> Self {
        Simulator::new(MachineConfig::apple_m4(), CoreKind::Performance)
    }

    /// Create an M4 efficiency-core simulator.
    pub fn m4_efficiency() -> Self {
        Simulator::new(MachineConfig::apple_m4(), CoreKind::Efficiency)
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The core kind this simulator models.
    pub fn core_kind(&self) -> CoreKind {
        self.core_kind
    }

    /// Reset the architectural state (registers, ZA, flags) while keeping
    /// memory contents.
    pub fn reset_state(&mut self) {
        self.state = CoreState::new(self.config.svl);
    }

    /// Effective address and transfer size of a memory instruction given the
    /// current register state.
    fn mem_access_info(&self, inst: &Inst) -> Option<(u64, u64)> {
        let vl = self.config.svl.bytes() as u64;
        let bytes = inst.mem_bytes(self.config.svl);
        let addr = match inst {
            Inst::Neon(n) => match *n {
                NeonInst::LdrQ { rn, imm, .. } | NeonInst::StrQ { rn, imm, .. } => {
                    self.state.x(rn) + imm as u64
                }
                NeonInst::LdpQ { rn, imm, .. } | NeonInst::StpQ { rn, imm, .. } => {
                    (self.state.x(rn) as i64 + imm as i64) as u64
                }
                _ => return None,
            },
            Inst::Sve(v) => match *v {
                SveInst::Ld1 { rn, imm_vl, .. } | SveInst::St1 { rn, imm_vl, .. } => {
                    (self.state.x(rn) as i64 + imm_vl as i64 * vl as i64) as u64
                }
                SveInst::Ld1Multi {
                    rn, imm_vl, count, ..
                }
                | SveInst::St1Multi {
                    rn, imm_vl, count, ..
                } => (self.state.x(rn) as i64 + imm_vl as i64 * vl as i64 * count as i64) as u64,
                SveInst::LdrZ { rn, imm_vl, .. } | SveInst::StrZ { rn, imm_vl, .. } => {
                    (self.state.x(rn) as i64 + imm_vl as i64 * vl as i64) as u64
                }
                _ => return None,
            },
            Inst::Sme(m) => match *m {
                SmeInst::LdrZa { rn, offset, .. } | SmeInst::StrZa { rn, offset, .. } => {
                    self.state.x(rn) + offset as u64 * vl
                }
                _ => return None,
            },
            Inst::Scalar(_) => return None,
        };
        Some((addr, bytes))
    }

    /// Run a program. `args` are placed in X0, X1, … before execution; the
    /// stack pointer is set to the top of a dedicated stack region.
    ///
    /// # Panics
    /// Panics if the program exceeds `opts.max_instructions` (runaway loop)
    /// or branches outside the program.
    pub fn run(&mut self, program: &Program, args: &[u64], opts: &RunOptions) -> RunResult {
        assert!(
            args.len() <= 8,
            "at most eight register arguments are supported"
        );
        for (i, arg) in args.iter().enumerate() {
            self.state.set_x(XReg::new(i as u8), *arg);
        }
        if self.mem.stack_top() == 0 {
            self.mem.init_stack();
        }
        self.state.set_x(XReg::SP, self.mem.stack_top());

        let timings = self.config.core(self.core_kind).clone();
        let mut scoreboard = opts.timing.then(|| Scoreboard::new(timings.clone()));
        let mut mem_model = opts.timing.then(|| {
            let mut m = MemModel::new(self.config.mem.clone(), timings.clock_ghz);
            m.set_working_set(opts.working_set_hint);
            m
        });

        let mut stats = ExecStats {
            clock_ghz: timings.clock_ghz,
            ..Default::default()
        };
        let svl = self.config.svl;
        let insts = program.insts();
        let mut pc: i64 = 0;

        while (pc as usize) < insts.len() {
            let inst = &insts[pc as usize];
            stats.instructions += 1;
            if stats.instructions > opts.max_instructions {
                panic!(
                    "program {} exceeded the instruction limit of {}",
                    program.name(),
                    opts.max_instructions
                );
            }
            stats.arith_ops += inst.arith_ops(svl);
            *stats
                .instructions_by_class
                .entry(format!("{:?}", inst.class()))
                .or_insert(0) += 1;

            // Memory accounting and bandwidth-model charge.
            let mut mem_cost = None;
            if inst.is_memory() {
                if let Some((addr, bytes)) = self.mem_access_info(inst) {
                    let kind = OpKind::of(inst);
                    if kind.is_store() {
                        stats.bytes_stored += bytes;
                    } else {
                        stats.bytes_loaded += bytes;
                    }
                    if let Some(model) = mem_model.as_mut() {
                        mem_cost = Some(model.access(kind, addr, bytes));
                    }
                }
            }
            if let Some(sb) = scoreboard.as_mut() {
                sb.issue(inst, mem_cost);
            }

            // Functional execution.
            let outcome = match inst {
                Inst::Scalar(s) => scalar::exec(&mut self.state, s),
                Inst::Neon(n) => {
                    if opts.mode == ExecMode::Functional {
                        neon::exec(&mut self.state, &mut self.mem, n);
                    }
                    Outcome::Next
                }
                Inst::Sve(v) => {
                    if opts.mode == ExecMode::Functional {
                        sve::exec(&mut self.state, &mut self.mem, v);
                    }
                    Outcome::Next
                }
                Inst::Sme(m) => {
                    if opts.mode == ExecMode::Functional {
                        sme::exec(&mut self.state, &mut self.mem, m);
                    }
                    Outcome::Next
                }
            };

            match outcome {
                Outcome::Next => pc += 1,
                Outcome::Branch(offset) => {
                    pc += offset as i64;
                    assert!(
                        pc >= 0 && (pc as usize) <= insts.len(),
                        "branch target out of range in program {}",
                        program.name()
                    );
                }
                Outcome::Return => break,
            }
        }

        if let Some(sb) = scoreboard {
            stats.cycles = sb.cycles();
            stats.profile = sb.profile().clone();
        }
        RunResult {
            stats,
            return_value: self.state.x(XReg::new(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_isa::asm::Assembler;
    use sme_isa::inst::ScalarInst;
    use sme_isa::regs::short::*;
    use sme_isa::types::{ElementType, NeonArrangement};

    /// The Lst. 1 Neon peak-throughput kernel.
    fn neon_fmla_kernel(unroll: u8) -> Program {
        let mut a = Assembler::new("neon_fmla");
        let top = a.new_label();
        a.bind(top);
        a.push(ScalarInst::SubImm {
            rd: x(0),
            rn: x(0),
            imm12: 1,
            shift12: false,
        });
        for d in 0..unroll {
            a.push(NeonInst::fmla_vec(v(d), v(30), v(31), NeonArrangement::S4));
        }
        a.cbnz(x(0), top);
        a.push(ScalarInst::mov_imm16(x(0), unroll as u16 * 8));
        a.ret();
        a.finish()
    }

    /// The Lst. 2 SME peak-throughput kernel.
    fn fmopa_kernel(tiles: u8) -> Program {
        let mut a = Assembler::new("fmopa_peak");
        a.push(SveInst::ptrue(p(0), ElementType::I8));
        a.push(SveInst::ptrue(p(1), ElementType::I8));
        let top = a.new_label();
        a.bind(top);
        a.push(ScalarInst::SubImm {
            rd: x(0),
            rn: x(0),
            imm12: 1,
            shift12: false,
        });
        for i in 0..32u8 {
            a.push(SmeInst::fmopa_f32(
                i % tiles,
                p(0),
                p(1),
                z((i * 2) % 30),
                z((i * 2 + 1) % 30),
            ));
        }
        a.cbnz(x(0), top);
        a.push(ScalarInst::mov_imm16(x(0), 32 * 512 / 16));
        a.ret();
        a.finish()
    }

    #[test]
    fn loop_execution_and_return_value() {
        let mut sim = Simulator::m4_performance();
        let program = neon_fmla_kernel(30);
        let result = sim.run(&program, &[100], &RunOptions::functional_only());
        assert_eq!(result.return_value, 240);
        // 100 iterations * 32 instructions + 2 tail instructions.
        assert_eq!(result.stats.instructions, 100 * 32 + 2);
        assert_eq!(result.stats.arith_ops, 100 * 30 * 8);
        assert_eq!(
            result.stats.cycles, 0.0,
            "functional-only runs carry no timing"
        );
    }

    #[test]
    fn neon_peak_matches_table_one() {
        let mut sim = Simulator::m4_performance();
        let program = neon_fmla_kernel(30);
        let result = sim.run(&program, &[2_000], &RunOptions::default());
        let gflops = result.stats.gflops();
        assert!(
            (gflops - 113.0).abs() < 4.0,
            "Neon FP32 peak: {gflops} GFLOPS"
        );
    }

    #[test]
    fn fmopa_peak_and_single_tile_drop() {
        let mut sim = Simulator::m4_performance();
        let peak = sim
            .run(&fmopa_kernel(4), &[500], &RunOptions::default())
            .stats
            .gflops();
        assert!(
            (peak - 2009.0).abs() < 40.0,
            "four-tile FMOPA peak: {peak} GFLOPS"
        );

        let mut sim = Simulator::m4_performance();
        let single = sim
            .run(&fmopa_kernel(1), &[500], &RunOptions::default())
            .stats
            .gflops();
        assert!(
            (single - 502.0).abs() < 20.0,
            "single-tile FMOPA: {single} GFLOPS"
        );
    }

    #[test]
    fn efficiency_core_is_slower() {
        let program = fmopa_kernel(4);
        let mut p_sim = Simulator::m4_performance();
        let mut e_sim = Simulator::m4_efficiency();
        let p = p_sim
            .run(&program, &[200], &RunOptions::default())
            .stats
            .gflops();
        let e = e_sim
            .run(&program, &[200], &RunOptions::default())
            .stats
            .gflops();
        assert!((e - 357.0).abs() < 10.0, "E-core FMOPA: {e}");
        assert!(
            p > 5.0 * e,
            "P-core must be >5x the E-core for SME ({p} vs {e})"
        );
    }

    #[test]
    fn timing_only_mode_matches_functional_timing() {
        let program = fmopa_kernel(4);
        let mut a = Simulator::m4_performance();
        let mut b = Simulator::m4_performance();
        let full = a.run(&program, &[100], &RunOptions::default());
        let fast = b.run(&program, &[100], &RunOptions::timing_only());
        assert_eq!(full.stats.instructions, fast.stats.instructions);
        assert!((full.stats.cycles - fast.stats.cycles).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "instruction limit")]
    fn runaway_loops_are_caught() {
        let mut a = Assembler::new("forever");
        let top = a.new_label();
        a.bind(top);
        a.push(ScalarInst::Nop);
        a.b(top);
        let program = a.finish();
        let mut sim = Simulator::m4_performance();
        let opts = RunOptions {
            max_instructions: 10_000,
            ..RunOptions::functional_only()
        };
        let _ = sim.run(&program, &[], &opts);
    }

    #[test]
    fn arguments_land_in_registers() {
        let mut a = Assembler::new("args");
        a.push(ScalarInst::AddReg {
            rd: x(0),
            rn: x(0),
            rm: x(1),
            shift: None,
        });
        a.ret();
        let program = a.finish();
        let mut sim = Simulator::m4_performance();
        let r = sim.run(&program, &[40, 2], &RunOptions::functional_only());
        assert_eq!(r.return_value, 42);
    }
}
