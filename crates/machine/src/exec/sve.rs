//! Functional semantics of the SVE / Streaming SVE instructions.

use crate::mem::Memory;
use crate::state::CoreState;
use sme_isa::inst::sve::SveInst;
use sme_isa::regs::{PReg, XReg, ZReg};
use sme_isa::types::ElementType;

fn effective_lanes(state: &CoreState, elem: ElementType) -> usize {
    state.vl_bytes() / elem.bytes() as usize
}

/// Base address of a scalar-plus-immediate (`mul vl`) access.
fn vl_offset_addr(state: &CoreState, rn: XReg, imm_vl: i64, unit_bytes: i64) -> u64 {
    (state.x(rn) as i64 + imm_vl * unit_bytes) as u64
}

fn load_vector(
    state: &mut CoreState,
    mem: &Memory,
    zt: ZReg,
    pg: Option<PReg>,
    elem: ElementType,
    addr: u64,
) {
    let eb = elem.bytes() as usize;
    let lanes = effective_lanes(state, elem);
    let mut bytes = vec![0u8; state.vl_bytes()];
    for lane in 0..lanes {
        let active = pg.is_none_or(|p| state.p_lane(p, elem, lane));
        if active {
            let src = mem.read_bytes(addr + (lane * eb) as u64, eb);
            bytes[lane * eb..lane * eb + eb].copy_from_slice(src);
        }
    }
    state.set_z(zt, &bytes);
}

fn store_vector(
    state: &CoreState,
    mem: &mut Memory,
    zt: ZReg,
    pg: Option<PReg>,
    elem: ElementType,
    addr: u64,
) {
    let eb = elem.bytes() as usize;
    let lanes = effective_lanes(state, elem);
    let data = state.z(zt).to_vec();
    for lane in 0..lanes {
        let active = pg.is_none_or(|p| state.p_lane(p, elem, lane));
        if active {
            mem.write_bytes(addr + (lane * eb) as u64, &data[lane * eb..lane * eb + eb]);
        }
    }
}

/// Execute one SVE instruction.
pub fn exec(state: &mut CoreState, mem: &mut Memory, inst: &SveInst) {
    let vl = state.vl_bytes() as i64;
    match *inst {
        SveInst::Ptrue { pd, elem } => {
            let lanes = effective_lanes(state, elem);
            state.set_p_first(pd, elem, lanes);
        }
        SveInst::PtrueCnt { pn, .. } => {
            state.set_pn_count(pn, u64::MAX);
        }
        SveInst::Whilelt { pd, elem, rn, rm } => {
            let count = (state.x(rm) as i64 - state.x(rn) as i64).max(0) as usize;
            state.set_p_first(pd, elem, count);
        }
        SveInst::WhileltCnt { pn, rn, rm, .. } => {
            let count = (state.x(rm) as i64 - state.x(rn) as i64).max(0) as u64;
            state.set_pn_count(pn, count);
        }
        SveInst::Ld1 {
            zt,
            elem,
            pg,
            rn,
            imm_vl,
        } => {
            let addr = vl_offset_addr(state, rn, imm_vl as i64, vl);
            load_vector(state, mem, zt, Some(pg), elem, addr);
        }
        SveInst::St1 {
            zt,
            elem,
            pg,
            rn,
            imm_vl,
        } => {
            let addr = vl_offset_addr(state, rn, imm_vl as i64, vl);
            store_vector(state, mem, zt, Some(pg), elem, addr);
        }
        SveInst::Ld1Multi {
            zt,
            count,
            elem,
            pn,
            rn,
            imm_vl,
        } => {
            let eb = elem.bytes() as usize;
            let lanes = effective_lanes(state, elem);
            let active = state.pn_count(pn).min((count as u64) * lanes as u64) as usize;
            let base = vl_offset_addr(state, rn, imm_vl as i64, vl * count as i64);
            for k in 0..count {
                let reg = zt.offset(k);
                let mut bytes = vec![0u8; state.vl_bytes()];
                for lane in 0..lanes {
                    let global = k as usize * lanes + lane;
                    if global < active {
                        let src = mem.read_bytes(base + (global * eb) as u64, eb);
                        bytes[lane * eb..lane * eb + eb].copy_from_slice(src);
                    }
                }
                state.set_z(reg, &bytes);
            }
        }
        SveInst::St1Multi {
            zt,
            count,
            elem,
            pn,
            rn,
            imm_vl,
        } => {
            let eb = elem.bytes() as usize;
            let lanes = effective_lanes(state, elem);
            let active = state.pn_count(pn).min((count as u64) * lanes as u64) as usize;
            let base = vl_offset_addr(state, rn, imm_vl as i64, vl * count as i64);
            for k in 0..count {
                let data = state.z(zt.offset(k)).to_vec();
                for lane in 0..lanes {
                    let global = k as usize * lanes + lane;
                    if global < active {
                        mem.write_bytes(
                            base + (global * eb) as u64,
                            &data[lane * eb..lane * eb + eb],
                        );
                    }
                }
            }
        }
        SveInst::LdrZ { zt, rn, imm_vl } => {
            let addr = vl_offset_addr(state, rn, imm_vl as i64, vl);
            load_vector(state, mem, zt, None, ElementType::I8, addr);
        }
        SveInst::StrZ { zt, rn, imm_vl } => {
            let addr = vl_offset_addr(state, rn, imm_vl as i64, vl);
            store_vector(state, mem, zt, None, ElementType::I8, addr);
        }
        SveInst::FmlaSve {
            zd,
            pg,
            zn,
            zm,
            elem,
        } => match elem {
            ElementType::F64 => {
                let mut d = state.z_f64(zd);
                let n = state.z_f64(zn);
                let m = state.z_f64(zm);
                for lane in 0..d.len() {
                    if state.p_lane(pg, elem, lane) {
                        d[lane] += n[lane] * m[lane];
                    }
                }
                state.set_z_f64(zd, &d);
            }
            _ => {
                let mut d = state.z_f32(zd);
                let n = state.z_f32(zn);
                let m = state.z_f32(zm);
                for lane in 0..d.len() {
                    if state.p_lane(pg, ElementType::F32, lane) {
                        d[lane] += n[lane] * m[lane];
                    }
                }
                state.set_z_f32(zd, &d);
            }
        },
        SveInst::DupImm { zd, elem, imm } => {
            let eb = elem.bytes() as usize;
            let mut bytes = vec![0u8; state.vl_bytes()];
            let value = imm as i64;
            for lane in 0..effective_lanes(state, elem) {
                let le = value.to_le_bytes();
                bytes[lane * eb..lane * eb + eb].copy_from_slice(&le[..eb]);
            }
            state.set_z(zd, &bytes);
        }
        SveInst::AddVl { rd, rn, imm } => {
            let value = (state.x(rn) as i64 + imm as i64 * vl) as u64;
            state.set_x(rd, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_isa::regs::short::*;
    use sme_isa::types::StreamingVectorLength;

    fn setup() -> (CoreState, Memory) {
        (CoreState::new(StreamingVectorLength::M4), Memory::new())
    }

    #[test]
    fn ptrue_and_whilelt() {
        let (mut s, mut m) = setup();
        exec(&mut s, &mut m, &SveInst::ptrue(p(0), ElementType::F32));
        assert_eq!(s.p_active_lanes(p(0), ElementType::F32), 16);
        s.set_x(x(2), 3);
        s.set_x(x(3), 10);
        exec(
            &mut s,
            &mut m,
            &SveInst::Whilelt {
                pd: p(1),
                elem: ElementType::F32,
                rn: x(2),
                rm: x(3),
            },
        );
        assert_eq!(s.p_active_lanes(p(1), ElementType::F32), 7);
        // Exhausted iteration space -> empty predicate.
        s.set_x(x(2), 12);
        s.set_x(x(3), 10);
        exec(
            &mut s,
            &mut m,
            &SveInst::Whilelt {
                pd: p(1),
                elem: ElementType::F32,
                rn: x(2),
                rm: x(3),
            },
        );
        assert_eq!(s.p_active_lanes(p(1), ElementType::F32), 0);
    }

    #[test]
    fn predicate_as_counter() {
        let (mut s, mut m) = setup();
        exec(&mut s, &mut m, &SveInst::ptrue_cnt(pn(8), ElementType::F32));
        assert_eq!(s.pn_count(pn(8)), u64::MAX);
        s.set_x(x(0), 10);
        s.set_x(x(1), 42);
        exec(
            &mut s,
            &mut m,
            &SveInst::WhileltCnt {
                pn: pn(9),
                elem: ElementType::F32,
                rn: x(0),
                rm: x(1),
                vl: 4,
            },
        );
        assert_eq!(s.pn_count(pn(9)), 32);
    }

    #[test]
    fn single_vector_load_store_with_predicate() {
        let (mut s, mut m) = setup();
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let src = m.alloc_f32(&data, 64);
        let dst = m.alloc_f32_zeroed(16, 64);
        s.set_x(x(0), src);
        s.set_x(x(1), dst);
        s.set_p_first(p(0), ElementType::F32, 5);
        exec(&mut s, &mut m, &SveInst::ld1w(z(0), p(0), x(0), 0));
        let loaded = s.z_f32(z(0));
        assert_eq!(&loaded[..5], &[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert!(
            loaded[5..].iter().all(|&v| v == 0.0),
            "inactive lanes read as zero"
        );
        s.set_p_first(p(1), ElementType::F32, 16);
        exec(&mut s, &mut m, &SveInst::st1w(z(0), p(1), x(1), 0));
        let out = m.read_f32_slice(dst, 16);
        assert_eq!(&out[..5], &[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&out[5..], &[0.0; 11]);
    }

    #[test]
    fn vl_indexed_addressing() {
        let (mut s, mut m) = setup();
        let data: Vec<f32> = (0..48).map(|i| i as f32).collect();
        let src = m.alloc_f32(&data, 64);
        s.set_x(x(0), src);
        s.set_p_first(p(0), ElementType::F32, 16);
        // Load the third vector (offset #2, mul vl).
        exec(&mut s, &mut m, &SveInst::ld1w(z(1), p(0), x(0), 2));
        assert_eq!(s.z_f32(z(1))[0], 32.0);
    }

    #[test]
    fn multi_vector_load_and_store() {
        let (mut s, mut m) = setup();
        let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let src = m.alloc_f32(&data, 128);
        let dst = m.alloc_f32_zeroed(64, 128);
        s.set_x(x(0), src);
        s.set_x(x(1), dst);
        exec(&mut s, &mut m, &SveInst::ptrue_cnt(pn(8), ElementType::F32));
        exec(
            &mut s,
            &mut m,
            &SveInst::ld1w_multi(z(0), 4, pn(8), x(0), 0),
        );
        assert_eq!(s.z_f32(z(0))[0], 0.0);
        assert_eq!(s.z_f32(z(1))[0], 16.0);
        assert_eq!(s.z_f32(z(2))[0], 32.0);
        assert_eq!(s.z_f32(z(3))[15], 63.0);
        exec(
            &mut s,
            &mut m,
            &SveInst::st1w_multi(z(0), 4, pn(8), x(1), 0),
        );
        assert_eq!(m.read_f32_slice(dst, 64), data);
    }

    #[test]
    fn multi_vector_load_respects_counter() {
        let (mut s, mut m) = setup();
        let data: Vec<f32> = (1..=32).map(|i| i as f32).collect();
        let src = m.alloc_f32(&data, 128);
        s.set_x(x(0), src);
        s.set_x(x(5), 0);
        s.set_x(x(6), 20);
        exec(
            &mut s,
            &mut m,
            &SveInst::WhileltCnt {
                pn: pn(8),
                elem: ElementType::F32,
                rn: x(5),
                rm: x(6),
                vl: 2,
            },
        );
        exec(
            &mut s,
            &mut m,
            &SveInst::ld1w_multi(z(0), 2, pn(8), x(0), 0),
        );
        assert_eq!(s.z_f32(z(0))[15], 16.0);
        let z1 = s.z_f32(z(1));
        assert_eq!(z1[3], 20.0, "elements below the counter are loaded");
        assert_eq!(z1[4], 0.0, "elements beyond the counter are zero");
    }

    #[test]
    fn unpredicated_vector_load_store() {
        let (mut s, mut m) = setup();
        let data: Vec<f32> = (0..32).map(|i| (i * i) as f32).collect();
        let src = m.alloc_f32(&data, 64);
        let dst = m.alloc_f32_zeroed(32, 64);
        s.set_x(x(0), src);
        s.set_x(x(1), dst);
        exec(
            &mut s,
            &mut m,
            &SveInst::LdrZ {
                zt: z(5),
                rn: x(0),
                imm_vl: 1,
            },
        );
        assert_eq!(s.z_f32(z(5))[0], 256.0);
        exec(
            &mut s,
            &mut m,
            &SveInst::StrZ {
                zt: z(5),
                rn: x(1),
                imm_vl: 0,
            },
        );
        assert_eq!(m.read_f32_slice(dst, 16), data[16..32].to_vec());
    }

    #[test]
    fn ssve_fmla() {
        let (mut s, mut m) = setup();
        exec(&mut s, &mut m, &SveInst::ptrue(p(0), ElementType::F32));
        let a: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let b = vec![2.0f32; 16];
        s.set_z_f32(z(1), &a);
        s.set_z_f32(z(2), &b);
        s.set_z_f32(z(0), &[1.0; 16]);
        exec(
            &mut s,
            &mut m,
            &SveInst::FmlaSve {
                zd: z(0),
                pg: p(0),
                zn: z(1),
                zm: z(2),
                elem: ElementType::F32,
            },
        );
        let d = s.z_f32(z(0));
        for (i, v) in d.iter().enumerate() {
            assert_eq!(*v, 1.0 + 2.0 * i as f32);
        }
    }

    #[test]
    fn dup_imm_and_addvl() {
        let (mut s, mut m) = setup();
        exec(
            &mut s,
            &mut m,
            &SveInst::DupImm {
                zd: z(3),
                elem: ElementType::F32,
                imm: 0,
            },
        );
        assert!(s.z_f32(z(3)).iter().all(|&v| v == 0.0));
        s.set_x(x(0), 1000);
        exec(
            &mut s,
            &mut m,
            &SveInst::AddVl {
                rd: x(1),
                rn: x(0),
                imm: 2,
            },
        );
        assert_eq!(s.x(x(1)), 1000 + 128);
        exec(
            &mut s,
            &mut m,
            &SveInst::AddVl {
                rd: x(1),
                rn: x(0),
                imm: -1,
            },
        );
        assert_eq!(s.x(x(1)), 1000 - 64);
    }
}
