//! Architectural state of one simulated core: general-purpose, Neon,
//! scalable vector and predicate registers, the ZA array, flags and the
//! streaming / ZA enable bits.

use serde::{Deserialize, Serialize};
use sme_isa::regs::{PReg, VReg, XReg, ZReg};
use sme_isa::types::{ElementType, StreamingVectorLength};

/// Condition flags (NZCV).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flags {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Carry.
    pub c: bool,
    /// Overflow.
    pub v: bool,
}

/// Architectural state of a single core.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreState {
    svl: StreamingVectorLength,
    /// X0–X30 followed by XZR (always zero) and SP.
    x: Vec<u64>,
    /// 128-bit Neon registers.
    v: Vec<[u8; 16]>,
    /// Scalable vector registers, `svl/8` bytes each.
    z: Vec<Vec<u8>>,
    /// Predicate registers, one bool per byte lane.
    p: Vec<Vec<bool>>,
    /// Predicate-as-counter registers PN8–PN15: number of active elements
    /// across a multi-vector group (`u64::MAX` after `ptrue`).
    pn_counter: Vec<u64>,
    /// The ZA array, `(svl/8)^2` bytes.
    za: Vec<u8>,
    /// Condition flags.
    pub flags: Flags,
    /// Streaming SVE mode enable.
    pub streaming: bool,
    /// ZA storage enable.
    pub za_enabled: bool,
}

impl CoreState {
    /// Create a zeroed core state for the given streaming vector length.
    pub fn new(svl: StreamingVectorLength) -> Self {
        let vl_bytes = svl.bytes() as usize;
        CoreState {
            svl,
            x: vec![0; 33],
            v: vec![[0; 16]; 32],
            z: vec![vec![0; vl_bytes]; 32],
            p: vec![vec![false; vl_bytes]; 16],
            pn_counter: vec![0; 8],
            za: vec![0; svl.za_bytes()],
            flags: Flags::default(),
            streaming: false,
            za_enabled: false,
        }
    }

    /// The streaming vector length this state was built for.
    pub fn svl(&self) -> StreamingVectorLength {
        self.svl
    }

    /// Vector length in bytes.
    pub fn vl_bytes(&self) -> usize {
        self.svl.bytes() as usize
    }

    // ---- general-purpose registers -------------------------------------

    /// Read a general-purpose register (XZR reads as zero).
    pub fn x(&self, r: XReg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.x[r.index() as usize]
        }
    }

    /// Write a general-purpose register (writes to XZR are discarded).
    pub fn set_x(&mut self, r: XReg, value: u64) {
        if !r.is_zero() {
            self.x[r.index() as usize] = value;
        }
    }

    // ---- Neon registers -------------------------------------------------

    /// Read a Neon register.
    pub fn v(&self, r: VReg) -> [u8; 16] {
        self.v[r.index() as usize]
    }

    /// Write a Neon register.
    pub fn set_v(&mut self, r: VReg, value: [u8; 16]) {
        self.v[r.index() as usize] = value;
    }

    /// Read a Neon register as `f32` lanes.
    pub fn v_f32(&self, r: VReg) -> [f32; 4] {
        let b = self.v(r);
        let mut out = [0f32; 4];
        for (i, chunk) in b.chunks_exact(4).enumerate() {
            out[i] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        out
    }

    /// Write a Neon register from `f32` lanes.
    pub fn set_v_f32(&mut self, r: VReg, lanes: [f32; 4]) {
        let mut b = [0u8; 16];
        for (i, v) in lanes.iter().enumerate() {
            b[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        self.set_v(r, b);
    }

    // ---- scalable vector registers ---------------------------------------

    /// Read a scalable vector register as raw bytes.
    pub fn z(&self, r: ZReg) -> &[u8] {
        &self.z[r.index() as usize]
    }

    /// Write a scalable vector register from raw bytes (must be `svl/8`
    /// bytes long).
    pub fn set_z(&mut self, r: ZReg, bytes: &[u8]) {
        assert_eq!(
            bytes.len(),
            self.vl_bytes(),
            "Z register write length mismatch"
        );
        self.z[r.index() as usize].copy_from_slice(bytes);
    }

    /// Read a scalable vector register as `f32` lanes.
    pub fn z_f32(&self, r: ZReg) -> Vec<f32> {
        self.z(r)
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Write a scalable vector register from `f32` lanes.
    pub fn set_z_f32(&mut self, r: ZReg, lanes: &[f32]) {
        assert_eq!(
            lanes.len() * 4,
            self.vl_bytes(),
            "Z register f32 write length mismatch"
        );
        let mut bytes = Vec::with_capacity(self.vl_bytes());
        for v in lanes {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.set_z(r, &bytes);
    }

    /// Read a scalable vector register as `f64` lanes.
    pub fn z_f64(&self, r: ZReg) -> Vec<f64> {
        self.z(r)
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect()
    }

    /// Write a scalable vector register from `f64` lanes.
    pub fn set_z_f64(&mut self, r: ZReg, lanes: &[f64]) {
        assert_eq!(
            lanes.len() * 8,
            self.vl_bytes(),
            "Z register f64 write length mismatch"
        );
        let mut bytes = Vec::with_capacity(self.vl_bytes());
        for v in lanes {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.set_z(r, &bytes);
    }

    // ---- predicate registers ---------------------------------------------

    /// Read a predicate register (one bool per byte lane).
    pub fn p(&self, r: PReg) -> &[bool] {
        &self.p[r.index() as usize]
    }

    /// Set every element of a predicate register to `value`.
    pub fn set_p_all(&mut self, r: PReg, value: bool) {
        for b in &mut self.p[r.index() as usize] {
            *b = value;
        }
    }

    /// Set a predicate so that the first `active` elements of width
    /// `elem` are true and the rest false (the effect of `whilelt`).
    pub fn set_p_first(&mut self, r: PReg, elem: ElementType, active: usize) {
        let eb = elem.bytes() as usize;
        let lanes = self.vl_bytes() / eb;
        let pred = &mut self.p[r.index() as usize];
        for b in pred.iter_mut() {
            *b = false;
        }
        for lane in 0..lanes.min(active) {
            pred[lane * eb] = true;
        }
    }

    /// Whether lane `lane` of width `elem` is active in predicate `r`.
    pub fn p_lane(&self, r: PReg, elem: ElementType, lane: usize) -> bool {
        let eb = elem.bytes() as usize;
        self.p[r.index() as usize][lane * eb]
    }

    /// Number of active lanes of width `elem` in predicate `r`.
    pub fn p_active_lanes(&self, r: PReg, elem: ElementType) -> usize {
        let eb = elem.bytes() as usize;
        let lanes = self.vl_bytes() / eb;
        (0..lanes)
            .filter(|&l| self.p[r.index() as usize][l * eb])
            .count()
    }

    // ---- predicate-as-counter registers -----------------------------------

    /// Read a predicate-as-counter register (PN8–PN15): the number of
    /// active elements across the governed multi-vector group.
    pub fn pn_count(&self, r: sme_isa::regs::PnReg) -> u64 {
        self.pn_counter[(r.index() - 8) as usize]
    }

    /// Write a predicate-as-counter register.
    pub fn set_pn_count(&mut self, r: sme_isa::regs::PnReg, count: u64) {
        self.pn_counter[(r.index() - 8) as usize] = count;
    }

    // ---- the ZA array ------------------------------------------------------

    /// Raw access to the ZA array bytes.
    pub fn za(&self) -> &[u8] {
        &self.za
    }

    /// Overwrite `bytes.len()` bytes of the ZA array starting at byte
    /// `offset` (used by tile-slice moves of arbitrary element width).
    pub fn set_za_bytes(&mut self, offset: usize, bytes: &[u8]) {
        self.za[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Zero the entire ZA array.
    pub fn zero_za(&mut self) {
        self.za.fill(0);
    }

    /// Zero the 64-bit tile `za<index>.d` (used by the `zero` instruction).
    pub fn zero_za_d_tile(&mut self, index: u8) {
        let vl = self.vl_bytes();
        let esz = 8usize;
        let rows = vl / esz;
        for r in 0..rows {
            let vec_idx = r * esz + index as usize;
            let start = vec_idx * vl;
            self.za[start..start + vl].fill(0);
        }
    }

    /// Read one ZA array vector (SVL bits).
    pub fn za_vector(&self, index: usize) -> &[u8] {
        let vl = self.vl_bytes();
        assert!(index < vl, "ZA array vector index {index} out of range");
        &self.za[index * vl..(index + 1) * vl]
    }

    /// Write one ZA array vector.
    pub fn set_za_vector(&mut self, index: usize, bytes: &[u8]) {
        let vl = self.vl_bytes();
        assert!(index < vl, "ZA array vector index {index} out of range");
        assert_eq!(bytes.len(), vl, "ZA array vector write length mismatch");
        self.za[index * vl..(index + 1) * vl].copy_from_slice(bytes);
    }

    /// ZA array vector index holding horizontal slice `row` of tile
    /// `tile` with elements of type `elem`.
    ///
    /// Tile `t` for element size `esz` bytes consists of the array vectors
    /// whose index is congruent to `t` modulo `esz`; its horizontal slice
    /// `r` is array vector `r * esz + t`.
    pub fn za_tile_row_vector(&self, tile: u8, elem: ElementType, row: usize) -> usize {
        let esz = elem.bytes() as usize;
        let dim = self.vl_bytes() / esz;
        assert!(row < dim, "tile row {row} out of range for {elem}");
        assert!(
            (tile as usize) < esz,
            "tile index {tile} out of range for {elem}"
        );
        row * esz + tile as usize
    }

    /// Byte offset of element (`row`, `col`) of tile `tile` inside the ZA
    /// array.
    pub fn za_elem_offset(&self, tile: u8, elem: ElementType, row: usize, col: usize) -> usize {
        let esz = elem.bytes() as usize;
        let dim = self.vl_bytes() / esz;
        assert!(col < dim, "tile column {col} out of range for {elem}");
        let vec_idx = self.za_tile_row_vector(tile, elem, row);
        vec_idx * self.vl_bytes() + col * esz
    }

    /// Read an `f32` tile element.
    pub fn za_f32(&self, tile: u8, row: usize, col: usize) -> f32 {
        let off = self.za_elem_offset(tile, ElementType::F32, row, col);
        f32::from_le_bytes([
            self.za[off],
            self.za[off + 1],
            self.za[off + 2],
            self.za[off + 3],
        ])
    }

    /// Write an `f32` tile element.
    pub fn set_za_f32(&mut self, tile: u8, row: usize, col: usize, value: f32) {
        let off = self.za_elem_offset(tile, ElementType::F32, row, col);
        self.za[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Read an `f64` tile element.
    pub fn za_f64(&self, tile: u8, row: usize, col: usize) -> f64 {
        let off = self.za_elem_offset(tile, ElementType::F64, row, col);
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.za[off..off + 8]);
        f64::from_le_bytes(b)
    }

    /// Write an `f64` tile element.
    pub fn set_za_f64(&mut self, tile: u8, row: usize, col: usize, value: f64) {
        let off = self.za_elem_offset(tile, ElementType::F64, row, col);
        self.za[off..off + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Read an `i32` tile element (integer outer products).
    pub fn za_i32(&self, tile: u8, row: usize, col: usize) -> i32 {
        let off = self.za_elem_offset(tile, ElementType::I32, row, col);
        i32::from_le_bytes([
            self.za[off],
            self.za[off + 1],
            self.za[off + 2],
            self.za[off + 3],
        ])
    }

    /// Write an `i32` tile element.
    pub fn set_za_i32(&mut self, tile: u8, row: usize, col: usize, value: i32) {
        let off = self.za_elem_offset(tile, ElementType::I32, row, col);
        self.za[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Extract a whole `f32` tile as a row-major `dim × dim` matrix
    /// (convenience for tests).
    pub fn za_tile_f32(&self, tile: u8) -> Vec<Vec<f32>> {
        let dim = ElementType::F32.tile_dim(self.svl);
        (0..dim)
            .map(|r| (0..dim).map(|c| self.za_f32(tile, r, c)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_isa::regs::short::*;

    fn state() -> CoreState {
        CoreState::new(StreamingVectorLength::M4)
    }

    #[test]
    fn xzr_semantics() {
        let mut s = state();
        s.set_x(x(3), 77);
        assert_eq!(s.x(x(3)), 77);
        s.set_x(XReg::XZR, 123);
        assert_eq!(s.x(XReg::XZR), 0, "XZR always reads zero");
        s.set_x(XReg::SP, 0x8000);
        assert_eq!(s.x(XReg::SP), 0x8000);
    }

    #[test]
    fn neon_f32_lanes() {
        let mut s = state();
        s.set_v_f32(v(5), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.v_f32(v(5)), [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn z_register_typed_views() {
        let mut s = state();
        let lanes: Vec<f32> = (0..16).map(|i| i as f32).collect();
        s.set_z_f32(z(7), &lanes);
        assert_eq!(s.z_f32(z(7)), lanes);
        let dlanes: Vec<f64> = (0..8).map(|i| i as f64 * 1.5).collect();
        s.set_z_f64(z(8), &dlanes);
        assert_eq!(s.z_f64(z(8)), dlanes);
        assert_eq!(s.z(z(0)).len(), 64);
    }

    #[test]
    fn predicate_first_n() {
        let mut s = state();
        s.set_p_all(p(0), true);
        assert_eq!(s.p_active_lanes(p(0), ElementType::F32), 16);
        s.set_p_first(p(1), ElementType::F32, 5);
        assert_eq!(s.p_active_lanes(p(1), ElementType::F32), 5);
        assert!(s.p_lane(p(1), ElementType::F32, 4));
        assert!(!s.p_lane(p(1), ElementType::F32, 5));
        s.set_p_first(p(2), ElementType::F32, 99);
        assert_eq!(
            s.p_active_lanes(p(2), ElementType::F32),
            16,
            "clamped to lane count"
        );
        s.set_p_first(p(3), ElementType::F64, 3);
        assert_eq!(s.p_active_lanes(p(3), ElementType::F64), 3);
    }

    #[test]
    fn za_tile_geometry_matches_architecture() {
        let s = state();
        // ZA0.S horizontal slices are array vectors 0, 4, 8, ..., 60.
        assert_eq!(s.za_tile_row_vector(0, ElementType::F32, 0), 0);
        assert_eq!(s.za_tile_row_vector(0, ElementType::F32, 1), 4);
        assert_eq!(s.za_tile_row_vector(0, ElementType::F32, 15), 60);
        // ZA3.S starts at vector 3.
        assert_eq!(s.za_tile_row_vector(3, ElementType::F32, 0), 3);
        // ZA7.D slices are vectors 7, 15, ..., 63.
        assert_eq!(s.za_tile_row_vector(7, ElementType::F64, 0), 7);
        assert_eq!(s.za_tile_row_vector(7, ElementType::F64, 7), 63);
    }

    #[test]
    fn za_element_accessors() {
        let mut s = state();
        s.set_za_f32(2, 3, 5, 42.5);
        assert_eq!(s.za_f32(2, 3, 5), 42.5);
        assert_eq!(s.za_f32(2, 5, 3), 0.0);
        s.set_za_f64(6, 7, 1, -1.25);
        assert_eq!(s.za_f64(6, 7, 1), -1.25);
        s.set_za_i32(1, 0, 15, -77);
        assert_eq!(s.za_i32(1, 0, 15), -77);
        let tile = s.za_tile_f32(2);
        assert_eq!(tile.len(), 16);
        assert_eq!(tile[3][5], 42.5);
    }

    #[test]
    fn zero_d_tile_only_touches_its_vectors() {
        let mut s = state();
        // Fill all of ZA with a marker.
        for idx in 0..64 {
            let bytes = vec![0xAB; 64];
            s.set_za_vector(idx, &bytes);
        }
        s.zero_za_d_tile(0);
        // Vectors 0, 8, 16, ... are zero; vector 1 is untouched.
        assert!(s.za_vector(0).iter().all(|&b| b == 0));
        assert!(s.za_vector(8).iter().all(|&b| b == 0));
        assert!(s.za_vector(1).iter().all(|&b| b == 0xAB));
        s.zero_za();
        assert!(s.za().iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn za_vector_bounds_checked() {
        let s = state();
        let _ = s.za_vector(64);
    }

    #[test]
    fn different_svl_scales_geometry() {
        let s = CoreState::new(StreamingVectorLength::new(256));
        assert_eq!(s.vl_bytes(), 32);
        assert_eq!(s.za().len(), 1024);
        assert_eq!(s.za_tile_row_vector(0, ElementType::F32, 7), 28);
    }
}
