//! Byte-addressable simulated memory with a simple bump allocator.
//!
//! The simulated address space starts at [`Memory::BASE`] (so that null
//! pointers trap) and grows on demand. Matrices, scratch panels and stack
//! space used by generated kernels all live here; the host never hands raw
//! host pointers to simulated code.

use serde::{Deserialize, Serialize};

/// Simulated memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Memory {
    data: Vec<u8>,
    next_alloc: u64,
    stack_top: u64,
}

impl Memory {
    /// Base address of the heap region. Address 0 is intentionally unmapped.
    pub const BASE: u64 = 0x1_0000;

    /// Size reserved for the simulated stack at the top of the address
    /// space in use.
    pub const STACK_BYTES: u64 = 1 << 20;

    /// Create an empty memory with a stack but no heap allocations.
    pub fn new() -> Self {
        Memory {
            data: Vec::new(),
            next_alloc: Self::BASE,
            stack_top: 0,
        }
    }

    /// Total bytes currently backed.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Allocate `bytes` with the given power-of-two `align`ment and return
    /// the simulated address.
    ///
    /// # Panics
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        assert!(
            align.is_power_of_two(),
            "alignment must be a power of two, got {align}"
        );
        let addr = (self.next_alloc + align - 1) & !(align - 1);
        self.next_alloc = addr + bytes;
        self.ensure(self.next_alloc);
        addr
    }

    /// Allocate an `f32` buffer, copy `data` into it and return its address.
    pub fn alloc_f32(&mut self, data: &[f32], align: u64) -> u64 {
        let addr = self.alloc((data.len() * 4) as u64, align);
        self.write_f32_slice(addr, data);
        addr
    }

    /// Allocate a zero-initialised `f32` buffer of `len` elements.
    pub fn alloc_f32_zeroed(&mut self, len: usize, align: u64) -> u64 {
        self.alloc((len * 4) as u64, align)
    }

    /// Set up (or reset) the simulated stack and return the initial stack
    /// pointer (the exclusive top of the stack region).
    pub fn init_stack(&mut self) -> u64 {
        let base = self.alloc(Self::STACK_BYTES, 4096);
        self.stack_top = base + Self::STACK_BYTES;
        self.stack_top
    }

    /// The most recently initialised stack top (0 if none).
    pub fn stack_top(&self) -> u64 {
        self.stack_top
    }

    fn ensure(&mut self, end: u64) {
        let need = (end - Self::BASE) as usize;
        if need > self.data.len() {
            self.data.resize(need, 0);
        }
    }

    fn index(&self, addr: u64, len: usize) -> usize {
        assert!(
            addr >= Self::BASE,
            "simulated access to unmapped low address 0x{addr:x} ({len} bytes)"
        );
        (addr - Self::BASE) as usize
    }

    /// Read `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> &[u8] {
        let idx = self.index(addr, len);
        assert!(
            idx + len <= self.data.len(),
            "simulated read of {len} bytes at 0x{addr:x} is out of bounds"
        );
        &self.data[idx..idx + len]
    }

    /// Write `bytes` starting at `addr`, growing the backing store if the
    /// address was allocated but not yet touched.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let idx = self.index(addr, bytes.len());
        let end = idx + bytes.len();
        assert!(
            (addr + bytes.len() as u64) <= self.next_alloc.max(self.stack_top),
            "simulated write of {} bytes at 0x{addr:x} is outside any allocation",
            bytes.len()
        );
        if end > self.data.len() {
            self.data.resize(end, 0);
        }
        self.data[idx..end].copy_from_slice(bytes);
    }

    /// Read one `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let b = self.read_bytes(addr, 4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Write one `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Read one `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let b = self.read_bytes(addr, 8);
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Write one `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Read one `f32`.
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Write one `f32`.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Read one `f64`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write one `f64`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Read a slice of `f32` values.
    pub fn read_f32_slice(&self, addr: u64, len: usize) -> Vec<f32> {
        self.read_bytes(addr, len * 4)
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Write a slice of `f32` values.
    pub fn write_f32_slice(&mut self, addr: u64, data: &[f32]) {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(addr, &bytes);
    }
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_respects_alignment() {
        let mut m = Memory::new();
        let a = m.alloc(10, 64);
        assert_eq!(a % 64, 0);
        let b = m.alloc(100, 128);
        assert_eq!(b % 128, 0);
        assert!(b > a, "allocations must not overlap");
        let c = m.alloc(4, 16);
        assert!(c >= b + 100);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_rejected() {
        let mut m = Memory::new();
        let _ = m.alloc(8, 48);
    }

    #[test]
    fn scalar_roundtrips() {
        let mut m = Memory::new();
        let a = m.alloc(64, 64);
        m.write_u32(a, 0xdeadbeef);
        assert_eq!(m.read_u32(a), 0xdeadbeef);
        m.write_u64(a + 8, u64::MAX - 5);
        assert_eq!(m.read_u64(a + 8), u64::MAX - 5);
        m.write_f32(a + 16, 3.5);
        assert_eq!(m.read_f32(a + 16), 3.5);
        m.write_f64(a + 24, -2.25);
        assert_eq!(m.read_f64(a + 24), -2.25);
    }

    #[test]
    fn f32_slices() {
        let mut m = Memory::new();
        let data: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        let addr = m.alloc_f32(&data, 128);
        assert_eq!(addr % 128, 0);
        assert_eq!(m.read_f32_slice(addr, 100), data);
    }

    #[test]
    fn zeroed_allocations_read_back_zero() {
        let mut m = Memory::new();
        let addr = m.alloc_f32_zeroed(16, 64);
        assert_eq!(m.read_f32_slice(addr, 16), vec![0.0; 16]);
    }

    #[test]
    fn stack_setup() {
        let mut m = Memory::new();
        let sp = m.init_stack();
        assert_eq!(sp, m.stack_top());
        // The stack grows downwards; writing just below the top must work.
        m.write_u64(sp - 8, 42);
        assert_eq!(m.read_u64(sp - 8), 42);
    }

    #[test]
    #[should_panic(expected = "unmapped low address")]
    fn null_accesses_trap() {
        let m = Memory::new();
        let _ = m.read_u32(8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_reads_trap() {
        let mut m = Memory::new();
        let a = m.alloc(16, 16);
        let _ = m.read_bytes(a, 1 << 20);
    }
}
