//! # sme-machine
//!
//! A functional **and** timing simulator of an Apple-M4-like CPU core with
//! SME matrix acceleration. This crate is the hardware substitute for the
//! paper's testbed (a 2024 iPad Pro with an M4 SoC): the reproduction
//! environment has no SME silicon, so kernels produced by `sme-gemm` and the
//! microbenchmarks in `sme-microbench` execute here instead.
//!
//! The simulator has two halves:
//!
//! * **Functional execution** ([`exec`]): architectural state ([`state`]), a
//!   byte-addressable memory ([`mem`]) and an interpreter for the
//!   instruction subset defined by `sme-isa`. This half answers *"does the
//!   generated kernel compute the right numbers?"*.
//! * **Timing model** ([`timing`]): an in-order issue scoreboard with
//!   per-operation throughput and latency, a shared-SME-unit port model and
//!   a cache-hierarchy bandwidth model, calibrated against the paper's own
//!   measurements (Table I, Figs. 1–5). This half answers *"how fast would
//!   this kernel run on M4?"* — in relative terms: the calibration targets
//!   are the published plateaus and knees, and the quantity of interest is
//!   which kernel wins and by roughly what factor, not absolute nanoseconds.
//!
//! [`multicore`] combines per-thread timing results with an explicit model
//! of M4's four performance cores, six efficiency cores and two shared SME
//! units to reproduce the scaling behaviour of Fig. 1.

#![warn(missing_docs)]

pub mod config;
pub mod counters;
pub mod exec;
pub mod mem;
pub mod multicore;
pub mod state;
pub mod timing;

pub use config::{CoreKind, MachineConfig};
pub use counters::{CycleProfile, ExecStats};
pub use exec::{ExecMode, RunOptions, Simulator};
pub use mem::Memory;
pub use state::CoreState;
pub use timing::{OpKind, Stream};
