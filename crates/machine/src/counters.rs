//! Execution statistics: retired instructions, arithmetic work, memory
//! traffic, modelled cycles and derived throughput figures.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Attribution of modelled cycles to execution streams.
///
/// Each key is either a [`Stream`](crate::timing::Stream) name (`"load"`,
/// `"outer-product"`, …) charging cycles the stream spent *executing*, or a
/// `"stall:<stream>"` key charging cycles an instruction of that stream
/// spent *waiting on operands* beyond its unit's availability. The
/// scoreboard charges every issue with exactly the amount it extended the
/// critical path, so the entries partition the total: [`sums_to`] holds
/// against `ExecStats::cycles` up to floating-point round-off.
///
/// [`sums_to`]: CycleProfile::sums_to
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleProfile {
    /// Cycles per class, keyed by stream or `stall:<stream>` name.
    pub classes: BTreeMap<String, f64>,
}

impl CycleProfile {
    /// Charge `cycles` to `class` (no-op for a zero charge).
    pub fn add(&mut self, class: &str, cycles: f64) {
        if cycles != 0.0 {
            *self.classes.entry(class.to_string()).or_insert(0.0) += cycles;
        }
    }

    /// Sum of all class charges.
    pub fn total(&self) -> f64 {
        self.classes.values().sum()
    }

    /// `true` if no cycles have been attributed (e.g. a functional-only
    /// run).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Merge another profile's charges into this one.
    pub fn merge(&mut self, other: &CycleProfile) {
        for (k, v) in &other.classes {
            *self.classes.entry(k.clone()).or_insert(0.0) += v;
        }
    }

    /// The invariant the profiler guarantees: the class charges partition
    /// `total_cycles`. Exact in real arithmetic; checked here up to f64
    /// round-off (1e-6 relative, 1e-6 absolute for tiny totals).
    pub fn sums_to(&self, total_cycles: f64) -> bool {
        let sum = self.total();
        let tol = 1e-6 * total_cycles.abs().max(1.0);
        (sum - total_cycles).abs() <= tol
    }

    /// The class with the largest charge, if any cycles were attributed.
    pub fn dominant(&self) -> Option<(&str, f64)> {
        self.classes
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Fraction of `total_cycles` charged to `class` (0 if absent).
    pub fn share(&self, class: &str, total_cycles: f64) -> f64 {
        if total_cycles <= 0.0 {
            return 0.0;
        }
        self.classes.get(class).copied().unwrap_or(0.0) / total_cycles
    }
}

impl fmt::Display for CycleProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        let mut entries: Vec<_> = self.classes.iter().collect();
        entries.sort_by(|a, b| b.1.total_cmp(a.1));
        for (class, cycles) in entries {
            let pct = if total > 0.0 {
                100.0 * cycles / total
            } else {
                0.0
            };
            writeln!(f, "{class:>20} : {cycles:12.0} cycles ({pct:5.1}%)")?;
        }
        Ok(())
    }
}

/// Statistics collected while running a program on the simulator.
///
/// The arithmetic counters follow the paper's accounting: a fused
/// multiply-add counts as two operations, and widening instructions count
/// the operations of their input precision (e.g. one BF16 widening outer
/// product on M4 counts 1024 BF16 operations).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Total instructions retired.
    pub instructions: u64,
    /// Retired instructions per execution class (keyed by class name).
    pub instructions_by_class: BTreeMap<String, u64>,
    /// Arithmetic operations performed (FLOPs for floating-point kernels).
    pub arith_ops: u64,
    /// Bytes loaded from memory.
    pub bytes_loaded: u64,
    /// Bytes stored to memory.
    pub bytes_stored: u64,
    /// Modelled core cycles (0 if the run was functional-only).
    pub cycles: f64,
    /// Core clock in GHz used to convert cycles to time.
    pub clock_ghz: f64,
    /// Attribution of `cycles` to execution streams (empty if the run was
    /// functional-only).
    pub profile: CycleProfile,
}

impl ExecStats {
    /// Modelled wall-clock seconds (0 if no timing was requested).
    pub fn seconds(&self) -> f64 {
        if self.clock_ghz == 0.0 {
            0.0
        } else {
            self.cycles / (self.clock_ghz * 1e9)
        }
    }

    /// Modelled arithmetic throughput in GFLOPS / GOPS.
    pub fn gflops(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            self.arith_ops as f64 / s / 1e9
        }
    }

    /// Modelled read bandwidth in GiB/s.
    pub fn load_gibs(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            self.bytes_loaded as f64 / s / (1u64 << 30) as f64
        }
    }

    /// Modelled write bandwidth in GiB/s.
    pub fn store_gibs(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            self.bytes_stored as f64 / s / (1u64 << 30) as f64
        }
    }

    /// Total memory traffic in bytes.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }

    /// Merge another run's counters into this one (used by batched runs).
    pub fn merge(&mut self, other: &ExecStats) {
        self.instructions += other.instructions;
        for (k, v) in &other.instructions_by_class {
            *self.instructions_by_class.entry(k.clone()).or_insert(0) += v;
        }
        self.arith_ops += other.arith_ops;
        self.bytes_loaded += other.bytes_loaded;
        self.bytes_stored += other.bytes_stored;
        self.cycles += other.cycles;
        if self.clock_ghz == 0.0 {
            self.clock_ghz = other.clock_ghz;
        }
        self.profile.merge(&other.profile);
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instructions : {}", self.instructions)?;
        writeln!(f, "arith ops    : {}", self.arith_ops)?;
        writeln!(f, "bytes loaded : {}", self.bytes_loaded)?;
        writeln!(f, "bytes stored : {}", self.bytes_stored)?;
        writeln!(f, "cycles       : {:.0}", self.cycles)?;
        if self.cycles > 0.0 {
            writeln!(f, "GFLOPS       : {:.1}", self.gflops())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecStats {
        ExecStats {
            instructions: 1000,
            instructions_by_class: BTreeMap::new(),
            arith_ops: 512_000,
            bytes_loaded: 1 << 20,
            bytes_stored: 1 << 19,
            cycles: 1_000.0,
            clock_ghz: 4.4,
            profile: CycleProfile::default(),
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample();
        let seconds = 1_000.0 / 4.4e9;
        assert!((s.seconds() - seconds).abs() < 1e-15);
        let gflops = 512_000.0 / seconds / 1e9;
        assert!((s.gflops() - gflops).abs() / gflops < 1e-12);
        assert!(s.load_gibs() > 0.0);
        assert!(s.store_gibs() > 0.0);
        assert_eq!(s.bytes_total(), (1 << 20) + (1 << 19));
    }

    #[test]
    fn zero_timing_is_safe() {
        let s = ExecStats::default();
        assert_eq!(s.seconds(), 0.0);
        assert_eq!(s.gflops(), 0.0);
        assert_eq!(s.load_gibs(), 0.0);
        assert_eq!(s.store_gibs(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.instructions, 2000);
        assert_eq!(a.arith_ops, 1_024_000);
        assert_eq!(a.cycles, 2_000.0);
        assert_eq!(a.clock_ghz, 4.4);
    }

    #[test]
    fn display_contains_key_fields() {
        let text = sample().to_string();
        assert!(text.contains("instructions"));
        assert!(text.contains("GFLOPS"));
    }

    #[test]
    fn profile_partitions_and_merges() {
        let mut p = CycleProfile::default();
        p.add("outer-product", 600.0);
        p.add("load", 300.0);
        p.add("stall:load", 100.0);
        p.add("branch", 0.0); // zero charges leave no entry
        assert_eq!(p.classes.len(), 3);
        assert!(p.sums_to(1_000.0));
        assert!(!p.sums_to(1_001.0));
        assert_eq!(p.dominant(), Some(("outer-product", 600.0)));
        assert!((p.share("load", 1_000.0) - 0.3).abs() < 1e-12);

        let mut q = p.clone();
        q.merge(&p);
        assert!(q.sums_to(2_000.0));

        // Merging through ExecStats keeps the invariant against the merged
        // cycle total.
        let mut a = sample();
        a.profile = p.clone();
        let mut b = sample();
        b.profile = p;
        a.merge(&b);
        assert!(a.profile.sums_to(2_000.0));
    }

    #[test]
    fn empty_profile_sums_to_zero_only() {
        let p = CycleProfile::default();
        assert!(p.is_empty());
        assert!(p.sums_to(0.0));
        assert!(!p.sums_to(10.0));
        assert_eq!(p.dominant(), None);
        assert_eq!(p.share("load", 0.0), 0.0);
    }
}
