//! Execution statistics: retired instructions, arithmetic work, memory
//! traffic, modelled cycles and derived throughput figures.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Statistics collected while running a program on the simulator.
///
/// The arithmetic counters follow the paper's accounting: a fused
/// multiply-add counts as two operations, and widening instructions count
/// the operations of their input precision (e.g. one BF16 widening outer
/// product on M4 counts 1024 BF16 operations).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Total instructions retired.
    pub instructions: u64,
    /// Retired instructions per execution class (keyed by class name).
    pub instructions_by_class: BTreeMap<String, u64>,
    /// Arithmetic operations performed (FLOPs for floating-point kernels).
    pub arith_ops: u64,
    /// Bytes loaded from memory.
    pub bytes_loaded: u64,
    /// Bytes stored to memory.
    pub bytes_stored: u64,
    /// Modelled core cycles (0 if the run was functional-only).
    pub cycles: f64,
    /// Core clock in GHz used to convert cycles to time.
    pub clock_ghz: f64,
}

impl ExecStats {
    /// Modelled wall-clock seconds (0 if no timing was requested).
    pub fn seconds(&self) -> f64 {
        if self.clock_ghz == 0.0 {
            0.0
        } else {
            self.cycles / (self.clock_ghz * 1e9)
        }
    }

    /// Modelled arithmetic throughput in GFLOPS / GOPS.
    pub fn gflops(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            self.arith_ops as f64 / s / 1e9
        }
    }

    /// Modelled read bandwidth in GiB/s.
    pub fn load_gibs(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            self.bytes_loaded as f64 / s / (1u64 << 30) as f64
        }
    }

    /// Modelled write bandwidth in GiB/s.
    pub fn store_gibs(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            self.bytes_stored as f64 / s / (1u64 << 30) as f64
        }
    }

    /// Total memory traffic in bytes.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }

    /// Merge another run's counters into this one (used by batched runs).
    pub fn merge(&mut self, other: &ExecStats) {
        self.instructions += other.instructions;
        for (k, v) in &other.instructions_by_class {
            *self.instructions_by_class.entry(k.clone()).or_insert(0) += v;
        }
        self.arith_ops += other.arith_ops;
        self.bytes_loaded += other.bytes_loaded;
        self.bytes_stored += other.bytes_stored;
        self.cycles += other.cycles;
        if self.clock_ghz == 0.0 {
            self.clock_ghz = other.clock_ghz;
        }
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instructions : {}", self.instructions)?;
        writeln!(f, "arith ops    : {}", self.arith_ops)?;
        writeln!(f, "bytes loaded : {}", self.bytes_loaded)?;
        writeln!(f, "bytes stored : {}", self.bytes_stored)?;
        writeln!(f, "cycles       : {:.0}", self.cycles)?;
        if self.cycles > 0.0 {
            writeln!(f, "GFLOPS       : {:.1}", self.gflops())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecStats {
        ExecStats {
            instructions: 1000,
            instructions_by_class: BTreeMap::new(),
            arith_ops: 512_000,
            bytes_loaded: 1 << 20,
            bytes_stored: 1 << 19,
            cycles: 1_000.0,
            clock_ghz: 4.4,
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample();
        let seconds = 1_000.0 / 4.4e9;
        assert!((s.seconds() - seconds).abs() < 1e-15);
        let gflops = 512_000.0 / seconds / 1e9;
        assert!((s.gflops() - gflops).abs() / gflops < 1e-12);
        assert!(s.load_gibs() > 0.0);
        assert!(s.store_gibs() > 0.0);
        assert_eq!(s.bytes_total(), (1 << 20) + (1 << 19));
    }

    #[test]
    fn zero_timing_is_safe() {
        let s = ExecStats::default();
        assert_eq!(s.seconds(), 0.0);
        assert_eq!(s.gflops(), 0.0);
        assert_eq!(s.load_gibs(), 0.0);
        assert_eq!(s.store_gibs(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.instructions, 2000);
        assert_eq!(a.arith_ops, 1_024_000);
        assert_eq!(a.cycles, 2_000.0);
        assert_eq!(a.clock_ghz, 4.4);
    }

    #[test]
    fn display_contains_key_fields() {
        let text = sample().to_string();
        assert!(text.contains("instructions"));
        assert!(text.contains("GFLOPS"));
    }
}
