//! Multi-core and shared-SME-unit model.
//!
//! The paper's Fig. 1 experiment runs the Neon FMLA and SME FMOPA
//! microbenchmarks on 1–10 "user-interactive" threads and observes:
//!
//! * Neon scales almost linearly over the four performance cores
//!   (395 GFLOPS at four threads) and each further thread adds roughly one
//!   efficiency core's worth (≈ 44 GFLOPS), reaching 656 GFLOPS at ten.
//! * SME throughput stays flat at one performance core's rate for 1–4
//!   threads (with a small arbitration loss, 2009 → 1983 GFLOPS), jumps by
//!   roughly one efficiency-core SME rate when a fifth thread lands on the
//!   efficiency cluster (→ 2338 GFLOPS), and does not improve further —
//!   the signature of **two shared SME units**, one per cluster.
//!
//! This module reproduces that behaviour analytically from per-thread
//! single-core results: thread placement follows the iOS Dispatch behaviour
//! described in §III-A (user-interactive threads fill the performance cores
//! first, then spill to efficiency cores), core-private work adds up per
//! core, and SME work saturates at one unit per cluster.

use crate::config::{CoreKind, MachineConfig};
use crate::timing::OpKind;
use serde::{Deserialize, Serialize};

/// Aggregate throughput prediction for one thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of user-interactive threads.
    pub threads: usize,
    /// Threads placed on performance cores.
    pub p_threads: usize,
    /// Threads placed on efficiency cores.
    pub e_threads: usize,
    /// Predicted aggregate throughput in GFLOPS.
    pub gflops: f64,
}

/// Analytic multi-core model.
#[derive(Debug, Clone)]
pub struct MulticoreModel {
    config: MachineConfig,
}

impl MulticoreModel {
    /// Create a model for the given machine.
    pub fn new(config: MachineConfig) -> Self {
        MulticoreModel { config }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Place `n` user-interactive threads onto cores: performance cores
    /// first, spilling to efficiency cores, saturating at the total core
    /// count.
    pub fn place_user_interactive(&self, n: usize) -> (usize, usize) {
        let mc = &self.config.multicore;
        let p = n.min(mc.p_cores);
        let e = (n - p).min(mc.e_cores);
        (p, e)
    }

    /// Aggregate throughput of core-private work (e.g. Neon FMLA), given the
    /// standalone single-core throughput on each core kind.
    pub fn aggregate_private(
        &self,
        p_threads: usize,
        e_threads: usize,
        p_gflops: f64,
        e_gflops: f64,
    ) -> f64 {
        let mc = &self.config.multicore;
        let p_scale = if p_threads > 1 {
            1.0 - mc.p_cluster_scaling_overhead * (p_threads as f64 - 1.0)
        } else {
            1.0
        };
        let p_total = p_gflops * p_threads as f64 * p_scale.max(0.0);
        let e_total = e_gflops * e_threads as f64 * self.config.multicore.ui_spill_efficiency;
        p_total + e_total
    }

    /// Aggregate throughput of SME work, which saturates at one unit per
    /// cluster: additional threads on a cluster only add arbitration
    /// overhead.
    pub fn aggregate_sme(
        &self,
        p_threads: usize,
        e_threads: usize,
        p_gflops: f64,
        e_gflops: f64,
    ) -> f64 {
        let mc = &self.config.multicore;
        let share = |threads: usize, unit_rate: f64| -> f64 {
            if threads == 0 {
                0.0
            } else {
                unit_rate * (1.0 - mc.sme_share_overhead * (threads as f64 - 1.0)).max(0.0)
            }
        };
        let mut total = share(p_threads, p_gflops);
        if mc.sme_units > 1 {
            total += share(e_threads, e_gflops);
        }
        total
    }

    /// Predicted scaling curve for 1..=`max_threads` user-interactive
    /// threads, given the standalone single-core throughputs.
    ///
    /// `uses_sme` selects between the shared-unit model (FMOPA benchmarks)
    /// and the core-private model (Neon benchmarks).
    pub fn scaling_curve(
        &self,
        max_threads: usize,
        p_gflops: f64,
        e_gflops: f64,
        uses_sme: bool,
    ) -> Vec<ScalingPoint> {
        (1..=max_threads)
            .map(|n| {
                let (p, e) = self.place_user_interactive(n);
                let gflops = if uses_sme {
                    self.aggregate_sme(p, e, p_gflops, e_gflops)
                } else {
                    self.aggregate_private(p, e, p_gflops, e_gflops)
                };
                ScalingPoint {
                    threads: n,
                    p_threads: p,
                    e_threads: e,
                    gflops,
                }
            })
            .collect()
    }

    /// The paper's §III-F cross-check: one user-interactive thread plus one
    /// utility (efficiency-class) thread running SME concurrently.
    pub fn mixed_ui_utility_sme(&self, p_gflops: f64, e_gflops: f64) -> f64 {
        self.aggregate_sme(1, 1, p_gflops, e_gflops)
    }

    /// Throughput of `op` on one efficiency core relative to one
    /// performance core (instructions per second, so clocks are included).
    pub fn relative_e_rate(&self, op: OpKind) -> f64 {
        let p = self.config.p_core.op(op).per_cycle * self.config.p_core.clock_ghz;
        let e = self.config.e_core.op(op).per_cycle * self.config.e_core.clock_ghz;
        if p == 0.0 {
            0.0
        } else {
            e / p
        }
    }

    /// The machine's SME execution slots: one per shared SME unit, in
    /// cluster order (performance cluster first).
    ///
    /// Fig. 1's analysis concludes the M4 has **two** SME units — one per
    /// cluster — so SME work placed on the machine runs on at most two
    /// engines regardless of thread count. `speed` is relative to the
    /// performance-cluster unit for FP32 FMOPA work (≈ 357 / 2009 for the
    /// efficiency cluster), letting a scheduler convert cycles simulated on
    /// a performance core into engine-local time.
    pub fn sme_engine_slots(&self) -> Vec<EngineSlot> {
        // The M4 has one unit per cluster; a hypothetical machine with more
        // units models the extras as efficiency-cluster units (there is
        // only one performance cluster to attach a unit to).
        let units = self.config.multicore.sme_units.max(1);
        let mut slots = vec![EngineSlot {
            kind: CoreKind::Performance,
            speed: 1.0,
        }];
        let e_speed = self.relative_e_rate(OpKind::SmeFmopaF32);
        slots.extend((1..units).map(|_| EngineSlot {
            kind: CoreKind::Efficiency,
            speed: e_speed,
        }));
        slots
    }

    /// The machine's core-private execution slots: one per core, performance
    /// cores first, with `speed` relative to a performance core for Neon
    /// FMLA work (≈ 46 / 113 for an efficiency core).
    pub fn private_engine_slots(&self) -> Vec<EngineSlot> {
        let mc = &self.config.multicore;
        let e_speed = self.relative_e_rate(OpKind::NeonFmla);
        let mut slots = Vec::with_capacity(mc.p_cores + mc.e_cores);
        slots.extend((0..mc.p_cores).map(|_| EngineSlot {
            kind: CoreKind::Performance,
            speed: 1.0,
        }));
        slots.extend((0..mc.e_cores).map(|_| EngineSlot {
            kind: CoreKind::Efficiency,
            speed: e_speed,
        }));
        slots
    }
}

/// One execution slot of the machine as seen by a batch scheduler: either a
/// shared SME unit or a private core, with its throughput relative to the
/// performance-class slot of the same engine type.
///
/// Produced by [`MulticoreModel::sme_engine_slots`] and
/// [`MulticoreModel::private_engine_slots`]; consumed by the `sme-router`
/// batch planner, which replaces the independent-identical-cores makespan
/// of the runtime with a placement over these slots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineSlot {
    /// Which cluster/core class the slot belongs to.
    pub kind: CoreKind,
    /// Throughput relative to the performance-class slot (1.0 for
    /// performance slots; < 1 for efficiency slots).
    pub speed: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    // Standalone single-core rates from Table I.
    const NEON_P: f64 = 113.0;
    const NEON_E: f64 = 46.0;
    const SME_P: f64 = 2009.0;
    const SME_E: f64 = 357.0;

    fn model() -> MulticoreModel {
        MulticoreModel::new(MachineConfig::apple_m4())
    }

    #[test]
    fn placement_fills_p_cores_first() {
        let m = model();
        assert_eq!(m.place_user_interactive(1), (1, 0));
        assert_eq!(m.place_user_interactive(4), (4, 0));
        assert_eq!(m.place_user_interactive(5), (4, 1));
        assert_eq!(m.place_user_interactive(10), (4, 6));
        assert_eq!(
            m.place_user_interactive(20),
            (4, 6),
            "saturates at the core count"
        );
    }

    #[test]
    fn neon_scaling_matches_figure_one() {
        let m = model();
        let curve = m.scaling_curve(10, NEON_P, NEON_E, false);
        assert!((curve[0].gflops - 113.0).abs() < 1.0);
        // Four threads: ≈ 395 GFLOPS.
        assert!(
            (curve[3].gflops - 395.0).abs() < 12.0,
            "4 threads: {}",
            curve[3].gflops
        );
        // Each additional thread adds roughly an efficiency core.
        let delta = curve[5].gflops - curve[4].gflops;
        assert!((delta - 46.0).abs() < 4.0, "per-thread increment {delta}");
        // Ten threads: ≈ 656 GFLOPS.
        assert!(
            (curve[9].gflops - 656.0).abs() < 25.0,
            "10 threads: {}",
            curve[9].gflops
        );
    }

    #[test]
    fn sme_scaling_matches_figure_one() {
        let m = model();
        let curve = m.scaling_curve(10, SME_P, SME_E, true);
        // Flat (slightly declining) over the performance cluster.
        assert!((curve[0].gflops - 2009.0).abs() < 1.0);
        assert!(
            (curve[3].gflops - 1983.0).abs() < 5.0,
            "4 threads: {}",
            curve[3].gflops
        );
        // Fifth thread engages the second SME unit.
        assert!(
            (curve[4].gflops - 2338.0).abs() < 15.0,
            "5 threads: {}",
            curve[4].gflops
        );
        // No further improvement beyond five threads.
        assert!(curve[9].gflops <= curve[4].gflops + 1.0);
        assert!(curve[9].gflops > curve[4].gflops - 20.0);
    }

    #[test]
    fn mixed_thread_experiment_matches_paper() {
        // §III-F: UI + utility threads together reach ≈ 2371 GFLOPS
        // (2009 + 357 = 2366 from Table I).
        let m = model();
        let total = m.mixed_ui_utility_sme(SME_P, SME_E);
        assert!((total - 2366.0).abs() < 10.0, "{total}");
    }

    #[test]
    fn speedup_summary_matches_discussion_section() {
        // §V: single-thread SME beats 10-thread Neon by up to 3.1x; with
        // both SME units the improvement reaches 3.6x.
        let m = model();
        let neon10 = m.scaling_curve(10, NEON_P, NEON_E, false)[9].gflops;
        let sme1 = SME_P;
        let sme_both = m.mixed_ui_utility_sme(SME_P, SME_E);
        let single_speedup = sme1 / neon10;
        let dual_speedup = sme_both / neon10;
        assert!(
            (single_speedup - 3.1).abs() < 0.25,
            "single-unit speedup {single_speedup}"
        );
        assert!(
            (dual_speedup - 3.6).abs() < 0.3,
            "dual-unit speedup {dual_speedup}"
        );
    }

    #[test]
    fn engine_slots_reflect_topology_and_table_one_ratios() {
        let m = model();
        let sme = m.sme_engine_slots();
        assert_eq!(sme.len(), 2, "two shared SME units on M4");
        assert_eq!(sme[0].kind, CoreKind::Performance);
        assert_eq!(sme[0].speed, 1.0);
        assert_eq!(sme[1].kind, CoreKind::Efficiency);
        // Table I: 357 / 2009 ≈ 0.178 for FP32 FMOPA.
        assert!(
            (sme[1].speed - 357.0 / 2009.0).abs() < 0.01,
            "{}",
            sme[1].speed
        );

        let private = m.private_engine_slots();
        assert_eq!(private.len(), 10, "4 P + 6 E cores");
        assert_eq!(
            private.iter().filter(|s| s.speed == 1.0).count(),
            4,
            "performance cores run at unit speed"
        );
        // Table I: 46 / 113 ≈ 0.407 for Neon FMLA.
        let e_speed = private.last().unwrap().speed;
        assert!((e_speed - 46.0 / 113.0).abs() < 0.01, "{e_speed}");

        // A single-unit machine exposes only the performance-cluster slot…
        let mut cfg = MachineConfig::apple_m4();
        cfg.multicore.sme_units = 1;
        assert_eq!(MulticoreModel::new(cfg).sme_engine_slots().len(), 1);
        // …and a hypothetical three-unit machine exposes all three.
        let mut cfg = MachineConfig::apple_m4();
        cfg.multicore.sme_units = 3;
        let slots = MulticoreModel::new(cfg).sme_engine_slots();
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[2].kind, CoreKind::Efficiency);
    }

    #[test]
    fn single_unit_machine_does_not_benefit_from_spill() {
        let mut cfg = MachineConfig::apple_m4();
        cfg.multicore.sme_units = 1;
        let m = MulticoreModel::new(cfg);
        let curve = m.scaling_curve(10, SME_P, SME_E, true);
        assert!(curve[9].gflops <= curve[0].gflops);
    }
}
