//! Timing model: operation classification, the dataflow scoreboard and the
//! cache-hierarchy bandwidth model.
//!
//! See the crate-level documentation for the calibration philosophy: the
//! model's constants are fitted to the paper's own measurements and the
//! simulator then *derives* kernel performance from instruction mix,
//! dependency structure and access patterns — the properties the paper's
//! code generator optimises.

pub mod memory;
pub mod op;
pub mod scoreboard;

pub use memory::{MemCost, MemModel};
pub use op::{OpKind, Stream, Unit};
pub use scoreboard::{deps, Resource, Scoreboard};
