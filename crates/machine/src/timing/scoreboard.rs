//! Dataflow scoreboard: per-unit issue throughput plus read-after-write
//! dependency tracking.
//!
//! The model is an idealised out-of-order core: an instruction starts as
//! soon as (a) its execution unit has a free issue slot and (b) all of its
//! source operands are ready. Write-after-write and write-after-read hazards
//! are ignored (register renaming). This is the right level of detail for
//! the paper's kernels: peak-throughput loops are limited by issue
//! bandwidth, the single-ZA-tile FMOPA experiment is limited by the
//! read-after-write chain through the tile, and memory-bound loops are
//! limited by the load/store occupancy charged by the bandwidth model.

use crate::config::CoreTimings;
use crate::counters::CycleProfile;
use crate::timing::memory::MemCost;
use crate::timing::op::{OpKind, Unit};
use sme_isa::inst::{Inst, NeonInst, ScalarInst, SmeInst, SveInst};
use sme_isa::regs::XReg;
use sme_isa::types::ElementType;
use std::collections::HashMap;

/// A dependency-tracked architectural resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// General-purpose register.
    X(u8),
    /// Neon register.
    V(u8),
    /// Scalable vector register.
    Z(u8),
    /// Predicate register (including predicate-as-counter aliases).
    P(u8),
    /// One 64-bit-granule ZA tile (`za0.d` … `za7.d`); wider tiles map onto
    /// several granules.
    ZaD(u8),
    /// The NZCV flags.
    Flags,
}

/// The timing scoreboard for one kernel execution on one core.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    timings: CoreTimings,
    unit_free: HashMap<Unit, f64>,
    ready: HashMap<Resource, f64>,
    end: f64,
    issued: u64,
    profile: CycleProfile,
}

impl Scoreboard {
    /// Create a scoreboard using the given core's timing table.
    pub fn new(timings: CoreTimings) -> Self {
        Scoreboard {
            timings,
            unit_free: HashMap::new(),
            ready: HashMap::new(),
            end: 0.0,
            issued: 0,
            profile: CycleProfile::default(),
        }
    }

    /// Total modelled cycles so far.
    pub fn cycles(&self) -> f64 {
        self.end
    }

    /// Number of instructions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Clock frequency of the modelled core in GHz.
    pub fn clock_ghz(&self) -> f64 {
        self.timings.clock_ghz
    }

    /// Account for one executed instruction. `mem` carries the bandwidth
    /// model's cost for memory operations.
    pub fn issue(&mut self, inst: &Inst, mem: Option<MemCost>) {
        let kind = OpKind::of(inst);
        let timing = self.timings.op(kind);
        let (interval, latency) = match mem {
            Some(c) => (c.interval, c.latency),
            None => (timing.interval(), timing.latency),
        };
        let unit = kind.unit();
        let unit_free = self.unit_free.get(&unit).copied().unwrap_or(0.0);

        let (reads, writes) = deps(inst);
        let operands_ready = reads
            .iter()
            .map(|r| self.ready.get(r).copied().unwrap_or(0.0))
            .fold(0.0f64, f64::max);

        let start = unit_free.max(operands_ready);
        self.unit_free.insert(unit, start + interval);
        let done = start + interval.max(latency);
        for w in writes {
            self.ready.insert(w, start + latency.max(interval));
        }

        // Cycle attribution: charge this issue with exactly the amount it
        // extended the critical path (`end`). Unit-free times and operand
        // ready times are both bounded by `end`, so `start <= old_end` and
        // the per-issue advances telescope to the final cycle count. When
        // the start was delayed by operands beyond the unit's availability
        // (a RAW chain, e.g. the single-ZA-tile FMOPA experiment), that
        // share of the advance is a dependency stall, not execution.
        let old_end = self.end;
        self.end = self.end.max(done);
        let advance = self.end - old_end;
        if advance > 0.0 {
            let stream = kind.stream().name();
            let raw_wait = (operands_ready - unit_free).clamp(0.0, advance);
            if raw_wait > 0.0 {
                self.profile.add(&format!("stall:{stream}"), raw_wait);
            }
            self.profile.add(stream, advance - raw_wait);
        }
        self.issued += 1;
    }

    /// Attribution of the modelled cycles to execution streams; the charges
    /// sum to [`cycles`](Scoreboard::cycles) (up to round-off).
    pub fn profile(&self) -> &CycleProfile {
        &self.profile
    }
}

/// ZA 64-bit granules covered by tile `index` of element type `elem`.
fn za_granules(index: u8, elem: ElementType) -> Vec<Resource> {
    let esz = elem.bytes() as u8;
    // Tile `t` for element size `esz` consists of ZA array vectors with
    // index ≡ t (mod esz); granule `d` covers vectors ≡ d (mod 8).
    (0..8u8)
        .filter(|d| d % esz == index % esz && *d >= index && (d - index).is_multiple_of(esz))
        .map(Resource::ZaD)
        .collect()
}

/// All eight ZA granules (conservative aliasing for array-vector accesses).
fn za_all() -> Vec<Resource> {
    (0..8u8).map(Resource::ZaD).collect()
}

fn x_res(r: XReg) -> Option<Resource> {
    if r.is_zero() {
        None
    } else {
        Some(Resource::X(r.index()))
    }
}

/// Source and destination resources of an instruction.
pub fn deps(inst: &Inst) -> (Vec<Resource>, Vec<Resource>) {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    match inst {
        Inst::Scalar(s) => match *s {
            ScalarInst::MovZ { rd, .. } => writes.extend(x_res(rd)),
            ScalarInst::MovK { rd, .. } => {
                reads.extend(x_res(rd));
                writes.extend(x_res(rd));
            }
            ScalarInst::MovReg { rd, rn } => {
                reads.extend(x_res(rn));
                writes.extend(x_res(rd));
            }
            ScalarInst::AddImm { rd, rn, .. }
            | ScalarInst::SubImm { rd, rn, .. }
            | ScalarInst::LslImm { rd, rn, .. } => {
                reads.extend(x_res(rn));
                writes.extend(x_res(rd));
            }
            ScalarInst::SubsImm { rd, rn, .. } => {
                reads.extend(x_res(rn));
                writes.extend(x_res(rd));
                writes.push(Resource::Flags);
            }
            ScalarInst::AddReg { rd, rn, rm, .. } | ScalarInst::SubReg { rd, rn, rm, .. } => {
                reads.extend(x_res(rn));
                reads.extend(x_res(rm));
                writes.extend(x_res(rd));
            }
            ScalarInst::Madd { rd, rn, rm, ra } => {
                reads.extend(x_res(rn));
                reads.extend(x_res(rm));
                reads.extend(x_res(ra));
                writes.extend(x_res(rd));
            }
            ScalarInst::CmpReg { rn, rm } => {
                reads.extend(x_res(rn));
                reads.extend(x_res(rm));
                writes.push(Resource::Flags);
            }
            ScalarInst::CmpImm { rn, .. } => {
                reads.extend(x_res(rn));
                writes.push(Resource::Flags);
            }
            ScalarInst::Cbnz { rn, .. } | ScalarInst::Cbz { rn, .. } => reads.extend(x_res(rn)),
            ScalarInst::BCond { .. } => reads.push(Resource::Flags),
            ScalarInst::B { .. } | ScalarInst::Nop | ScalarInst::Ret => {}
        },
        Inst::Neon(n) => match *n {
            NeonInst::FmlaVec { vd, vn, vm, .. } | NeonInst::FmlaElem { vd, vn, vm, .. } => {
                reads.push(Resource::V(vd.index()));
                reads.push(Resource::V(vn.index()));
                reads.push(Resource::V(vm.index()));
                writes.push(Resource::V(vd.index()));
            }
            NeonInst::Bfmmla { vd, vn, vm } => {
                reads.push(Resource::V(vd.index()));
                reads.push(Resource::V(vn.index()));
                reads.push(Resource::V(vm.index()));
                writes.push(Resource::V(vd.index()));
            }
            NeonInst::LdrQ { vt, rn, .. }
            | NeonInst::LdrD { vt, rn, .. }
            | NeonInst::LdrS { vt, rn, .. } => {
                reads.extend(x_res(rn));
                writes.push(Resource::V(vt.index()));
            }
            NeonInst::StrQ { vt, rn, .. }
            | NeonInst::StrD { vt, rn, .. }
            | NeonInst::StrS { vt, rn, .. } => {
                reads.push(Resource::V(vt.index()));
                reads.extend(x_res(rn));
            }
            NeonInst::InsElemD { vd, vn, .. } => {
                reads.push(Resource::V(vd.index()));
                reads.push(Resource::V(vn.index()));
                writes.push(Resource::V(vd.index()));
            }
            NeonInst::LdpQ { vt1, vt2, rn, .. } => {
                reads.extend(x_res(rn));
                writes.push(Resource::V(vt1.index()));
                writes.push(Resource::V(vt2.index()));
            }
            NeonInst::StpQ { vt1, vt2, rn, .. } => {
                reads.push(Resource::V(vt1.index()));
                reads.push(Resource::V(vt2.index()));
                reads.extend(x_res(rn));
            }
            NeonInst::DupElem { vd, vn, .. } => {
                reads.push(Resource::V(vn.index()));
                writes.push(Resource::V(vd.index()));
            }
            NeonInst::MoviZero { vd, .. } => writes.push(Resource::V(vd.index())),
        },
        Inst::Sve(v) => match *v {
            SveInst::Ptrue { pd, .. } => writes.push(Resource::P(pd.index())),
            SveInst::PtrueCnt { pn, .. } => writes.push(Resource::P(pn.index())),
            SveInst::Whilelt { pd, rn, rm, .. } => {
                reads.extend(x_res(rn));
                reads.extend(x_res(rm));
                writes.push(Resource::P(pd.index()));
            }
            SveInst::WhileltCnt { pn, rn, rm, .. } => {
                reads.extend(x_res(rn));
                reads.extend(x_res(rm));
                writes.push(Resource::P(pn.index()));
            }
            SveInst::Ld1 { zt, pg, rn, .. } => {
                reads.push(Resource::P(pg.index()));
                reads.extend(x_res(rn));
                writes.push(Resource::Z(zt.index()));
            }
            SveInst::St1 { zt, pg, rn, .. } => {
                reads.push(Resource::Z(zt.index()));
                reads.push(Resource::P(pg.index()));
                reads.extend(x_res(rn));
            }
            SveInst::Ld1Multi {
                zt, count, pn, rn, ..
            } => {
                reads.push(Resource::P(pn.index()));
                reads.extend(x_res(rn));
                for k in 0..count {
                    writes.push(Resource::Z(zt.offset(k).index()));
                }
            }
            SveInst::St1Multi {
                zt, count, pn, rn, ..
            } => {
                reads.push(Resource::P(pn.index()));
                reads.extend(x_res(rn));
                for k in 0..count {
                    reads.push(Resource::Z(zt.offset(k).index()));
                }
            }
            SveInst::LdrZ { zt, rn, .. } => {
                reads.extend(x_res(rn));
                writes.push(Resource::Z(zt.index()));
            }
            SveInst::StrZ { zt, rn, .. } => {
                reads.push(Resource::Z(zt.index()));
                reads.extend(x_res(rn));
            }
            SveInst::FmlaSve { zd, pg, zn, zm, .. } => {
                reads.push(Resource::Z(zd.index()));
                reads.push(Resource::Z(zn.index()));
                reads.push(Resource::Z(zm.index()));
                reads.push(Resource::P(pg.index()));
                writes.push(Resource::Z(zd.index()));
            }
            SveInst::DupImm { zd, .. } => writes.push(Resource::Z(zd.index())),
            SveInst::AddVl { rd, rn, .. } => {
                reads.extend(x_res(rn));
                writes.extend(x_res(rd));
            }
        },
        Inst::Sme(m) => match *m {
            SmeInst::Smstart { .. } | SmeInst::Smstop { .. } => {}
            SmeInst::Fmopa {
                tile,
                elem,
                pn,
                pm,
                zn,
                zm,
            } => {
                reads.push(Resource::Z(zn.index()));
                reads.push(Resource::Z(zm.index()));
                reads.push(Resource::P(pn.index()));
                reads.push(Resource::P(pm.index()));
                let gran = za_granules(tile, elem);
                reads.extend(gran.iter().copied());
                writes.extend(gran);
            }
            SmeInst::FmopaWide {
                tile,
                pn,
                pm,
                zn,
                zm,
                ..
            }
            | SmeInst::Smopa {
                tile,
                pn,
                pm,
                zn,
                zm,
                ..
            } => {
                reads.push(Resource::Z(zn.index()));
                reads.push(Resource::Z(zm.index()));
                reads.push(Resource::P(pn.index()));
                reads.push(Resource::P(pm.index()));
                let gran = za_granules(tile, ElementType::F32);
                reads.extend(gran.iter().copied());
                writes.extend(gran);
            }
            SmeInst::MovaToTile {
                tile,
                rs,
                zt,
                count,
                ..
            } => {
                reads.extend(x_res(rs));
                for k in 0..count {
                    reads.push(Resource::Z(zt.offset(k).index()));
                }
                writes.extend(za_granules(tile.index, tile.elem));
            }
            SmeInst::MovaFromTile {
                tile,
                rs,
                zt,
                count,
                ..
            } => {
                reads.extend(x_res(rs));
                reads.extend(za_granules(tile.index, tile.elem));
                for k in 0..count {
                    writes.push(Resource::Z(zt.offset(k).index()));
                }
            }
            SmeInst::LdrZa { rs, rn, .. } => {
                reads.extend(x_res(rs));
                reads.extend(x_res(rn));
                writes.extend(za_all());
            }
            SmeInst::StrZa { rs, rn, .. } => {
                reads.extend(x_res(rs));
                reads.extend(x_res(rn));
                reads.extend(za_all());
            }
            SmeInst::ZeroZa { mask } => {
                for d in 0..8u8 {
                    if mask & (1 << d) != 0 {
                        writes.push(Resource::ZaD(d));
                    }
                }
            }
            SmeInst::FmlaZaVectors {
                rv,
                zn,
                zm,
                vgx,
                offset,
                ..
            } => {
                reads.extend(x_res(rv));
                for k in 0..vgx {
                    reads.push(Resource::Z(zn.offset(k).index()));
                }
                reads.push(Resource::Z(zm.index()));
                // The accessed ZA array vectors are (rv + offset) within
                // each vector-group partition; their 64-bit granule rotates
                // with the offset, so instructions using different offsets
                // are independent (exactly how the Table I microbenchmark
                // avoids back-to-back accumulation into the same vectors).
                let granule = Resource::ZaD(offset % 8);
                reads.push(granule);
                writes.push(granule);
            }
        },
    }
    (reads, writes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use sme_isa::regs::short::*;
    use sme_isa::types::NeonArrangement;

    fn p_scoreboard() -> Scoreboard {
        Scoreboard::new(MachineConfig::apple_m4().p_core.clone())
    }

    #[test]
    fn za_granule_mapping() {
        // za0.s covers granules 0 and 4 (matching the ZERO mask mapping).
        assert_eq!(
            za_granules(0, ElementType::F32),
            vec![Resource::ZaD(0), Resource::ZaD(4)]
        );
        assert_eq!(
            za_granules(3, ElementType::F32),
            vec![Resource::ZaD(3), Resource::ZaD(7)]
        );
        // za5.d is exactly granule 5.
        assert_eq!(za_granules(5, ElementType::F64), vec![Resource::ZaD(5)]);
    }

    #[test]
    fn independent_fmopas_reach_issue_throughput() {
        // The Lst. 2 microbenchmark: 32 FMOPAs rotating over four tiles.
        let mut sb = p_scoreboard();
        let cfg = MachineConfig::apple_m4();
        let iters = 1000;
        for _ in 0..iters {
            for i in 0..32u8 {
                let tile = i % 4;
                let inst: Inst =
                    SmeInst::fmopa_f32(tile, p(0), p(1), z(i % 30), z((i + 1) % 30)).into();
                sb.issue(&inst, None);
            }
        }
        let cycles = sb.cycles();
        let flops = (iters * 32 * 512) as f64;
        let gflops = flops / (cycles / (cfg.p_core.clock_ghz * 1e9)) / 1e9;
        assert!(
            (gflops - 2009.0).abs() < 30.0,
            "four-tile FMOPA loop: {gflops} GFLOPS"
        );
    }

    #[test]
    fn profile_partitions_cycles_and_names_the_bottleneck() {
        // Peak-throughput loop: the advance is pure outer-product execution.
        let mut sb = p_scoreboard();
        for _ in 0..1000 {
            for i in 0..32u8 {
                let inst: Inst =
                    SmeInst::fmopa_f32(i % 4, p(0), p(1), z(i % 30), z((i + 1) % 30)).into();
                sb.issue(&inst, None);
            }
        }
        assert!(sb.profile().sums_to(sb.cycles()));
        let (class, _) = sb.profile().dominant().unwrap();
        assert_eq!(class, "outer-product");

        // Latency-bound loop: the RAW chain through the single ZA tile must
        // show up as a dependency stall, not as execution.
        let mut sb = p_scoreboard();
        for i in 0..4_000u32 {
            let inst: Inst = SmeInst::fmopa_f32(
                0,
                p(0),
                p(1),
                z((i % 15) as u8 * 2),
                z((i % 15) as u8 * 2 + 1),
            )
            .into();
            sb.issue(&inst, None);
        }
        assert!(sb.profile().sums_to(sb.cycles()));
        let (class, _) = sb.profile().dominant().unwrap();
        assert_eq!(class, "stall:outer-product");
    }

    #[test]
    fn single_tile_fmopa_is_latency_bound() {
        let mut sb = p_scoreboard();
        let cfg = MachineConfig::apple_m4();
        let iters = 32_000;
        for i in 0..iters {
            let inst: Inst = SmeInst::fmopa_f32(
                0,
                p(0),
                p(1),
                z((i % 15) as u8 * 2),
                z((i % 15) as u8 * 2 + 1),
            )
            .into();
            sb.issue(&inst, None);
        }
        let gflops = (iters * 512) as f64 / (sb.cycles() / (cfg.p_core.clock_ghz * 1e9)) / 1e9;
        assert!(
            (gflops - 502.0).abs() < 15.0,
            "single-tile FMOPA loop must drop to ≈502 GFLOPS, got {gflops}"
        );
    }

    #[test]
    fn neon_fmla_peak_matches_table_one() {
        let mut sb = p_scoreboard();
        let cfg = MachineConfig::apple_m4();
        let iters = 10_000;
        for i in 0..iters {
            let dst = (i % 30) as u8;
            let inst: Inst = NeonInst::fmla_vec(v(dst), v(30), v(31), NeonArrangement::S4).into();
            sb.issue(&inst, None);
        }
        let gflops = (iters * 8) as f64 / (sb.cycles() / (cfg.p_core.clock_ghz * 1e9)) / 1e9;
        assert!((gflops - 113.0).abs() < 3.0, "Neon FMLA peak {gflops}");
    }

    #[test]
    fn dependent_chain_is_latency_limited() {
        // All FMLAs accumulate into the same register: latency-bound.
        let mut sb = p_scoreboard();
        for _ in 0..1000 {
            let inst: Inst = NeonInst::fmla_vec(v(0), v(30), v(31), NeonArrangement::S4).into();
            sb.issue(&inst, None);
        }
        let per_inst = sb.cycles() / 1000.0;
        assert!(
            per_inst > 2.5,
            "chained FMLA must pay the 3-cycle latency, got {per_inst}"
        );
    }

    #[test]
    fn memory_cost_overrides_compute_interval() {
        let mut sb = p_scoreboard();
        let inst: Inst = SmeInst::LdrZa {
            rs: x(12),
            offset: 0,
            rn: x(0),
        }
        .into();
        sb.issue(
            &inst,
            Some(MemCost {
                interval: 10.0,
                latency: 30.0,
            }),
        );
        assert!(sb.cycles() >= 30.0);
        assert_eq!(sb.issued(), 1);
    }

    #[test]
    fn units_do_not_contend_with_each_other() {
        let mut sb = p_scoreboard();
        // Interleave scalar and SME work: the scalar loop overhead must hide
        // behind the FMOPA issue stream, as it does on real hardware.
        for i in 0..1000u32 {
            let sub: Inst = ScalarInst::SubImm {
                rd: x(0),
                rn: x(0),
                imm12: 1,
                shift12: false,
            }
            .into();
            sb.issue(&sub, None);
            for t in 0..4u8 {
                let f: Inst = SmeInst::fmopa_f32(t, p(0), p(1), z((i % 14) as u8 * 2), z(1)).into();
                sb.issue(&f, None);
            }
        }
        // 4000 FMOPAs at 0.892/cycle ≈ 4484 cycles; the 1000 subs must not add to that.
        assert!(
            sb.cycles() < 4600.0,
            "scalar work must overlap SME work: {}",
            sb.cycles()
        );
    }
}
