//! Classification of instructions into timing-relevant operation kinds and
//! execution units.

use serde::{Deserialize, Serialize};
use sme_isa::inst::{Inst, NeonInst, ScalarInst, SmeInst, SveInst};
use sme_isa::types::ElementType;

/// Operation kind used to look up throughput/latency in the machine
/// configuration.
///
/// The granularity mirrors the rows of the paper's Table I plus the memory
/// strategies of Figs. 2–5: two instructions with the same kind are modelled
/// as having identical cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Integer ALU (address arithmetic, immediate moves, compares).
    IntAlu,
    /// Branches.
    Branch,
    /// Neon fused multiply-add (vector or by-element).
    NeonFmla,
    /// Neon BF16 matrix multiply-accumulate.
    NeonBfmmla,
    /// Other Neon data processing (dup, movi).
    NeonOther,
    /// Neon loads (LDR Q / LDP Q).
    NeonLoad,
    /// Neon stores (STR Q / STP Q).
    NeonStore,
    /// Streaming-SVE predicated FMLA on single vectors.
    SsveFmla,
    /// SVE predicate manipulation (ptrue, whilelt).
    SvePred,
    /// Other SVE data processing (dup immediate, addvl).
    SveOther,
    /// FP32 non-widening outer product (FMOPA).
    SmeFmopaF32,
    /// FP64 non-widening outer product (FMOPA).
    SmeFmopaF64,
    /// FP16/BF16 widening outer product (FMOPA/BFMOPA).
    SmeFmopaWide,
    /// I8 widening sum of outer products (SMOPA, 4-way).
    SmeSmopaI8,
    /// I16 widening sum of outer products (SMOPA, 2-way).
    SmeSmopaI16,
    /// SME2 multi-vector FMLA on ZA array vectors.
    SmeFmlaVec,
    /// MOVA of a single vector between a Z register and a tile slice.
    SmeMova1,
    /// MOVA of a two-vector group.
    SmeMova2,
    /// MOVA of a four-vector group.
    SmeMova4,
    /// `zero {za…}`.
    SmeZero,
    /// SMSTART / SMSTOP.
    SmeControl,
    /// Direct ZA array-vector load (`ldr za[...]`).
    LoadLdrZa,
    /// Direct ZA array-vector store (`str za[...]`).
    StoreStrZa,
    /// Single-vector contiguous SVE load (`ld1w { z }, …`).
    LoadLd1Single,
    /// Two-vector contiguous load (`ld1w { z, z }, png/z, …`).
    LoadLd1Multi2,
    /// Four-vector contiguous load (`ld1w { z..z }, png/z, …`).
    LoadLd1Multi4,
    /// Single-vector contiguous SVE store.
    StoreSt1Single,
    /// Two-vector contiguous store.
    StoreSt1Multi2,
    /// Four-vector contiguous store.
    StoreSt1Multi4,
    /// Unpredicated SVE vector load (`ldr z, …`).
    LoadLdrZ,
    /// Unpredicated SVE vector store (`str z, …`).
    StoreStrZ,
}

/// Execution stream a cycle is attributed to by the profiler.
///
/// This is the paper's vocabulary for *where cycles go*: the load and store
/// streams of Figs. 2–5, the outer-product stream of Table I, the
/// ZA-transfer traffic the blocking strategies trade against, plus the
/// scalar/branch loop scaffolding. It is deliberately coarser than
/// [`OpKind`] (31 kinds fold into 7 streams) so a [`CycleProfile`] stays
/// readable.
///
/// [`CycleProfile`]: crate::counters::CycleProfile
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stream {
    /// Loads of any flavour (Neon, SVE contiguous, unpredicated `ldr z`).
    Load,
    /// Stores of any flavour.
    Store,
    /// ZA array traffic: direct ZA loads/stores, MOVA transfers, `zero`.
    ZaTransfer,
    /// Outer products and streaming-mode vector FP on the SME unit.
    OuterProduct,
    /// Neon arithmetic on the core-private FP pipes.
    NeonArith,
    /// Scalar ALU, predicate manipulation, SME mode control.
    Scalar,
    /// Branches.
    Branch,
}

impl Stream {
    /// Stable lower-case name used as the key of a
    /// [`CycleProfile`](crate::counters::CycleProfile) entry.
    pub fn name(self) -> &'static str {
        match self {
            Stream::Load => "load",
            Stream::Store => "store",
            Stream::ZaTransfer => "za-transfer",
            Stream::OuterProduct => "outer-product",
            Stream::NeonArith => "neon-arith",
            Stream::Scalar => "scalar",
            Stream::Branch => "branch",
        }
    }

    /// All streams, in display order.
    pub fn all() -> &'static [Stream] {
        &[
            Stream::Load,
            Stream::Store,
            Stream::ZaTransfer,
            Stream::OuterProduct,
            Stream::NeonArith,
            Stream::Scalar,
            Stream::Branch,
        ]
    }
}

/// Execution resource an operation occupies for throughput accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// Scalar integer ALUs.
    ScalarAlu,
    /// Branch unit.
    Branch,
    /// Neon floating-point/SIMD pipes.
    NeonFp,
    /// Load/store unit (core-side).
    LoadStore,
    /// The shared SME unit (outer products, ZA moves, ZA loads/stores,
    /// streaming-mode vector FP).
    Sme,
}

impl OpKind {
    /// Classify an instruction.
    pub fn of(inst: &Inst) -> OpKind {
        match inst {
            Inst::Scalar(s) => match s {
                ScalarInst::Cbnz { .. }
                | ScalarInst::Cbz { .. }
                | ScalarInst::B { .. }
                | ScalarInst::BCond { .. }
                | ScalarInst::Ret => OpKind::Branch,
                _ => OpKind::IntAlu,
            },
            Inst::Neon(n) => match n {
                NeonInst::FmlaVec { .. } | NeonInst::FmlaElem { .. } => OpKind::NeonFmla,
                NeonInst::Bfmmla { .. } => OpKind::NeonBfmmla,
                NeonInst::LdrQ { .. }
                | NeonInst::LdpQ { .. }
                | NeonInst::LdrD { .. }
                | NeonInst::LdrS { .. } => OpKind::NeonLoad,
                NeonInst::StrQ { .. }
                | NeonInst::StpQ { .. }
                | NeonInst::StrD { .. }
                | NeonInst::StrS { .. } => OpKind::NeonStore,
                NeonInst::DupElem { .. }
                | NeonInst::MoviZero { .. }
                | NeonInst::InsElemD { .. } => OpKind::NeonOther,
            },
            Inst::Sve(v) => match v {
                SveInst::Ptrue { .. }
                | SveInst::PtrueCnt { .. }
                | SveInst::Whilelt { .. }
                | SveInst::WhileltCnt { .. } => OpKind::SvePred,
                SveInst::FmlaSve { .. } => OpKind::SsveFmla,
                SveInst::DupImm { .. } | SveInst::AddVl { .. } => OpKind::SveOther,
                SveInst::Ld1 { .. } => OpKind::LoadLd1Single,
                SveInst::St1 { .. } => OpKind::StoreSt1Single,
                SveInst::Ld1Multi { count, .. } => {
                    if *count == 4 {
                        OpKind::LoadLd1Multi4
                    } else {
                        OpKind::LoadLd1Multi2
                    }
                }
                SveInst::St1Multi { count, .. } => {
                    if *count == 4 {
                        OpKind::StoreSt1Multi4
                    } else {
                        OpKind::StoreSt1Multi2
                    }
                }
                SveInst::LdrZ { .. } => OpKind::LoadLdrZ,
                SveInst::StrZ { .. } => OpKind::StoreStrZ,
            },
            Inst::Sme(m) => match m {
                SmeInst::Smstart { .. } | SmeInst::Smstop { .. } => OpKind::SmeControl,
                SmeInst::Fmopa { elem, .. } => {
                    if *elem == ElementType::F64 {
                        OpKind::SmeFmopaF64
                    } else {
                        OpKind::SmeFmopaF32
                    }
                }
                SmeInst::FmopaWide { .. } => OpKind::SmeFmopaWide,
                SmeInst::Smopa { from, .. } => {
                    if *from == ElementType::I8 {
                        OpKind::SmeSmopaI8
                    } else {
                        OpKind::SmeSmopaI16
                    }
                }
                SmeInst::FmlaZaVectors { .. } => OpKind::SmeFmlaVec,
                SmeInst::MovaToTile { count, .. } | SmeInst::MovaFromTile { count, .. } => {
                    match count {
                        1 => OpKind::SmeMova1,
                        2 => OpKind::SmeMova2,
                        _ => OpKind::SmeMova4,
                    }
                }
                SmeInst::ZeroZa { .. } => OpKind::SmeZero,
                SmeInst::LdrZa { .. } => OpKind::LoadLdrZa,
                SmeInst::StrZa { .. } => OpKind::StoreStrZa,
            },
        }
    }

    /// The execution unit this operation occupies.
    pub fn unit(self) -> Unit {
        match self {
            OpKind::IntAlu | OpKind::SvePred | OpKind::SveOther => Unit::ScalarAlu,
            OpKind::Branch => Unit::Branch,
            OpKind::NeonFmla | OpKind::NeonBfmmla | OpKind::NeonOther => Unit::NeonFp,
            OpKind::NeonLoad
            | OpKind::NeonStore
            | OpKind::LoadLd1Single
            | OpKind::LoadLd1Multi2
            | OpKind::LoadLd1Multi4
            | OpKind::StoreSt1Single
            | OpKind::StoreSt1Multi2
            | OpKind::StoreSt1Multi4
            | OpKind::LoadLdrZ
            | OpKind::StoreStrZ
            | OpKind::LoadLdrZa
            | OpKind::StoreStrZa => Unit::LoadStore,
            OpKind::SsveFmla
            | OpKind::SmeFmopaF32
            | OpKind::SmeFmopaF64
            | OpKind::SmeFmopaWide
            | OpKind::SmeSmopaI8
            | OpKind::SmeSmopaI16
            | OpKind::SmeFmlaVec
            | OpKind::SmeMova1
            | OpKind::SmeMova2
            | OpKind::SmeMova4
            | OpKind::SmeZero
            | OpKind::SmeControl => Unit::Sme,
        }
    }

    /// The execution stream this operation's cycles are attributed to.
    pub fn stream(self) -> Stream {
        match self {
            OpKind::NeonLoad
            | OpKind::LoadLd1Single
            | OpKind::LoadLd1Multi2
            | OpKind::LoadLd1Multi4
            | OpKind::LoadLdrZ => Stream::Load,
            OpKind::NeonStore
            | OpKind::StoreSt1Single
            | OpKind::StoreSt1Multi2
            | OpKind::StoreSt1Multi4
            | OpKind::StoreStrZ => Stream::Store,
            OpKind::LoadLdrZa
            | OpKind::StoreStrZa
            | OpKind::SmeMova1
            | OpKind::SmeMova2
            | OpKind::SmeMova4
            | OpKind::SmeZero => Stream::ZaTransfer,
            OpKind::SmeFmopaF32
            | OpKind::SmeFmopaF64
            | OpKind::SmeFmopaWide
            | OpKind::SmeSmopaI8
            | OpKind::SmeSmopaI16
            | OpKind::SmeFmlaVec
            | OpKind::SsveFmla => Stream::OuterProduct,
            OpKind::NeonFmla | OpKind::NeonBfmmla | OpKind::NeonOther => Stream::NeonArith,
            OpKind::IntAlu | OpKind::SvePred | OpKind::SveOther | OpKind::SmeControl => {
                Stream::Scalar
            }
            OpKind::Branch => Stream::Branch,
        }
    }

    /// `true` if the kind is a memory access timed by the bandwidth model.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            OpKind::NeonLoad
                | OpKind::NeonStore
                | OpKind::LoadLd1Single
                | OpKind::LoadLd1Multi2
                | OpKind::LoadLd1Multi4
                | OpKind::StoreSt1Single
                | OpKind::StoreSt1Multi2
                | OpKind::StoreSt1Multi4
                | OpKind::LoadLdrZ
                | OpKind::StoreStrZ
                | OpKind::LoadLdrZa
                | OpKind::StoreStrZa
        )
    }

    /// `true` if the kind is a memory write.
    pub fn is_store(self) -> bool {
        matches!(
            self,
            OpKind::NeonStore
                | OpKind::StoreSt1Single
                | OpKind::StoreSt1Multi2
                | OpKind::StoreSt1Multi4
                | OpKind::StoreStrZ
                | OpKind::StoreStrZa
        )
    }

    /// All operation kinds (useful for building complete configuration
    /// tables and for exhaustive tests).
    pub fn all() -> &'static [OpKind] {
        use OpKind::*;
        &[
            IntAlu,
            Branch,
            NeonFmla,
            NeonBfmmla,
            NeonOther,
            NeonLoad,
            NeonStore,
            SsveFmla,
            SvePred,
            SveOther,
            SmeFmopaF32,
            SmeFmopaF64,
            SmeFmopaWide,
            SmeSmopaI8,
            SmeSmopaI16,
            SmeFmlaVec,
            SmeMova1,
            SmeMova2,
            SmeMova4,
            SmeZero,
            SmeControl,
            LoadLdrZa,
            StoreStrZa,
            LoadLd1Single,
            LoadLd1Multi2,
            LoadLd1Multi4,
            StoreSt1Single,
            StoreSt1Multi2,
            StoreSt1Multi4,
            LoadLdrZ,
            StoreStrZ,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_isa::regs::short::*;
    use sme_isa::types::NeonArrangement;

    #[test]
    fn classification_matches_table_one_rows() {
        let fmla: Inst = NeonInst::fmla_vec(v(0), v(30), v(31), NeonArrangement::S4).into();
        assert_eq!(OpKind::of(&fmla), OpKind::NeonFmla);
        let fmopa: Inst = SmeInst::fmopa_f32(0, p(0), p(1), z(0), z(1)).into();
        assert_eq!(OpKind::of(&fmopa), OpKind::SmeFmopaF32);
        let fmopa64: Inst = SmeInst::fmopa_f64(0, p(0), p(1), z(0), z(1)).into();
        assert_eq!(OpKind::of(&fmopa64), OpKind::SmeFmopaF64);
        let bfmopa: Inst = SmeInst::bfmopa(0, p(0), p(1), z(0), z(1)).into();
        assert_eq!(OpKind::of(&bfmopa), OpKind::SmeFmopaWide);
        let smopa: Inst = SmeInst::smopa_i8(0, p(0), p(1), z(0), z(1)).into();
        assert_eq!(OpKind::of(&smopa), OpKind::SmeSmopaI8);
        let ssve: Inst = SveInst::FmlaSve {
            zd: z(0),
            pg: p(0),
            zn: z(1),
            zm: z(2),
            elem: ElementType::F32,
        }
        .into();
        assert_eq!(OpKind::of(&ssve), OpKind::SsveFmla);
    }

    #[test]
    fn memory_strategies_distinguished() {
        let ldr_za: Inst = SmeInst::LdrZa {
            rs: x(12),
            offset: 0,
            rn: x(0),
        }
        .into();
        assert_eq!(OpKind::of(&ldr_za), OpKind::LoadLdrZa);
        let ld4: Inst = SveInst::ld1w_multi(z(0), 4, pn(8), x(0), 0).into();
        assert_eq!(OpKind::of(&ld4), OpKind::LoadLd1Multi4);
        let ld2: Inst = SveInst::ld1w_multi(z(0), 2, pn(8), x(0), 0).into();
        assert_eq!(OpKind::of(&ld2), OpKind::LoadLd1Multi2);
        let ld1: Inst = SveInst::ld1w(z(0), p(0), x(0), 0).into();
        assert_eq!(OpKind::of(&ld1), OpKind::LoadLd1Single);
        assert!(OpKind::of(&ld1).is_memory());
        assert!(!OpKind::of(&ld1).is_store());
        let st: Inst = SveInst::st1w_multi(z(0), 4, pn(8), x(0), 0).into();
        assert_eq!(OpKind::of(&st), OpKind::StoreSt1Multi4);
        assert!(OpKind::of(&st).is_store());
    }

    #[test]
    fn units() {
        assert_eq!(OpKind::SmeFmopaF32.unit(), Unit::Sme);
        assert_eq!(OpKind::NeonFmla.unit(), Unit::NeonFp);
        assert_eq!(OpKind::LoadLdrZa.unit(), Unit::LoadStore);
        assert_eq!(OpKind::IntAlu.unit(), Unit::ScalarAlu);
        assert_eq!(OpKind::Branch.unit(), Unit::Branch);
    }

    #[test]
    fn all_is_exhaustive_for_classification() {
        // Every kind returned by `of` must be present in `all`.
        assert_eq!(OpKind::all().len(), 31);
        for k in OpKind::all() {
            // unit() and stream() must be total.
            let _ = k.unit();
            let _ = k.stream();
        }
    }

    #[test]
    fn streams_fold_the_kinds_sensibly() {
        assert_eq!(OpKind::SmeFmopaF32.stream(), Stream::OuterProduct);
        assert_eq!(OpKind::SsveFmla.stream(), Stream::OuterProduct);
        assert_eq!(OpKind::NeonFmla.stream(), Stream::NeonArith);
        assert_eq!(OpKind::LoadLdrZa.stream(), Stream::ZaTransfer);
        assert_eq!(OpKind::SmeMova4.stream(), Stream::ZaTransfer);
        assert_eq!(OpKind::LoadLd1Multi4.stream(), Stream::Load);
        assert_eq!(OpKind::StoreStrZ.stream(), Stream::Store);
        assert_eq!(OpKind::SmeControl.stream(), Stream::Scalar);
        assert_eq!(OpKind::Branch.stream(), Stream::Branch);
        // Stream names are distinct (they key the CycleProfile map).
        let names: std::collections::BTreeSet<_> = Stream::all().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Stream::all().len());
    }
}
