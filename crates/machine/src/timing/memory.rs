//! Cache-hierarchy bandwidth model.
//!
//! Each memory access is charged an occupancy interval on the load/store
//! unit derived from (a) the per-strategy pipe rate (how many bytes per
//! cycle the chosen instruction form can move when the data is cache
//! resident), (b) the alignment of the access, and (c) the bandwidth cap of
//! the cache level the working set currently falls into. The per-strategy
//! rates and the alignment penalties are calibrated to Figs. 2–5 of the
//! paper; the level capacities produce the knees of those figures.

use crate::config::MemTimings;
use crate::timing::op::OpKind;
use std::collections::HashSet;

/// Cost of one memory access as seen by the scoreboard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemCost {
    /// Cycles the access occupies the load/store pipe.
    pub interval: f64,
    /// Additional cycles before a dependent consumer can use the data.
    pub latency: f64,
}

/// Working-set tracking and bandwidth lookup.
#[derive(Debug, Clone)]
pub struct MemModel {
    cfg: MemTimings,
    clock_ghz: f64,
    lines: HashSet<u64>,
    saturated: bool,
    working_set_override: Option<u64>,
    line_cap: usize,
}

/// Cache-line size used for footprint tracking (bytes).
const LINE: u64 = 64;

impl MemModel {
    /// Create a model for the given memory configuration and core clock.
    pub fn new(cfg: MemTimings, clock_ghz: f64) -> Self {
        MemModel {
            cfg,
            clock_ghz,
            lines: HashSet::new(),
            saturated: false,
            working_set_override: None,
            line_cap: 1 << 22, // 4 Mi lines = 256 MiB of exact tracking
        }
    }

    /// Pin the working-set size instead of tracking touched cache lines.
    ///
    /// The bandwidth sweeps of Figs. 2–5 iterate over buffers up to 2 GiB;
    /// pinning the footprint lets them query steady-state bandwidth without
    /// functionally touching gigabytes of simulated memory.
    pub fn set_working_set(&mut self, bytes: Option<u64>) {
        self.working_set_override = bytes;
    }

    /// Current working-set estimate in bytes.
    pub fn working_set(&self) -> u64 {
        if let Some(ws) = self.working_set_override {
            return ws;
        }
        if self.saturated {
            return u64::MAX;
        }
        self.lines.len() as u64 * LINE
    }

    /// Reset footprint tracking (e.g. between benchmark repetitions).
    pub fn reset_footprint(&mut self) {
        self.lines.clear();
        self.saturated = false;
    }

    /// Convert an absolute GiB/s cap into bytes per core cycle.
    fn cap_to_bytes_per_cycle(&self, cap_gibs: f64) -> f64 {
        if cap_gibs.is_infinite() {
            f64::INFINITY
        } else {
            cap_gibs * (1u64 << 30) as f64 / (self.clock_ghz * 1e9)
        }
    }

    fn touch(&mut self, addr: u64, bytes: u64) {
        if self.working_set_override.is_some() || self.saturated {
            return;
        }
        let first = addr / LINE;
        let last = (addr + bytes.max(1) - 1) / LINE;
        for line in first..=last {
            self.lines.insert(line);
            if self.lines.len() > self.line_cap {
                self.saturated = true;
                return;
            }
        }
    }

    /// Index of the hierarchy level the current working set falls into.
    pub fn level_index(&self) -> usize {
        let ws = self.working_set();
        self.cfg
            .levels
            .iter()
            .position(|l| ws <= l.capacity)
            .unwrap_or(self.cfg.levels.len() - 1)
    }

    /// Name of the hierarchy level currently serving accesses.
    pub fn level_name(&self) -> &str {
        &self.cfg.levels[self.level_index()].name
    }

    /// Charge one access and return its cost.
    pub fn access(&mut self, kind: OpKind, addr: u64, bytes: u64) -> MemCost {
        debug_assert!(
            kind.is_memory(),
            "non-memory op {kind:?} charged to the memory model"
        );
        self.touch(addr, bytes);
        let level = &self.cfg.levels[self.level_index()];

        let mut rate = *self
            .cfg
            .strategy_rate
            .get(&kind)
            .unwrap_or(&self.cfg.default_rate);

        // Alignment sensitivity (Figs. 4–5).
        if let Some(&req) = self.cfg.full_rate_alignment.get(&kind) {
            if !addr.is_multiple_of(req) {
                rate *= self
                    .cfg
                    .misaligned_factor
                    .get(&kind)
                    .copied()
                    .unwrap_or(1.0);
            }
        }

        // Small, aligned store boost (Fig. 5, < 8 KiB working sets).
        if kind.is_store()
            && self.working_set() <= self.cfg.small_store_threshold
            && addr.is_multiple_of(64)
        {
            rate *= self.cfg.small_store_aligned_boost;
        }

        let cap = if kind.is_store() {
            self.cap_to_bytes_per_cycle(level.store_cap_gibs)
        } else {
            self.cap_to_bytes_per_cycle(level.load_cap_gibs)
        };
        let effective = rate.min(cap);
        let latency = if kind.is_store() {
            1.0
        } else {
            level.load_latency
        };
        MemCost {
            interval: bytes as f64 / effective,
            latency,
        }
    }

    /// Achievable steady-state bandwidth in GiB/s for a strategy at a given
    /// working-set size and address alignment, ignoring any companion
    /// instructions (used by tests and analytic sweeps).
    pub fn steady_state_gibs(&mut self, kind: OpKind, working_set: u64, alignment: u64) -> f64 {
        let saved = self.working_set_override;
        self.set_working_set(Some(working_set));
        // Use an address with exactly the requested alignment.
        let addr = if alignment >= 128 {
            0
        } else {
            alignment.max(1)
        };
        let bytes = 64u64;
        let cost = self.access(kind, addr, bytes);
        self.working_set_override = saved;
        bytes as f64 / cost.interval * self.clock_ghz * 1e9 / (1u64 << 30) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn model() -> MemModel {
        let cfg = MachineConfig::apple_m4();
        MemModel::new(cfg.mem.clone(), cfg.p_core.clock_ghz)
    }

    #[test]
    fn ldr_za_plateau_matches_figure_two() {
        let mut m = model();
        let bw = m.steady_state_gibs(OpKind::LoadLdrZa, 1 << 20, 128);
        assert!((bw - 375.0).abs() < 15.0, "LDR ZA L2 bandwidth {bw}");
    }

    #[test]
    fn str_za_plateau_matches_figure_three() {
        let mut m = model();
        let bw = m.steady_state_gibs(OpKind::StoreStrZa, 1 << 20, 128);
        assert!((bw - 233.0).abs() < 15.0, "STR ZA L2 bandwidth {bw}");
    }

    #[test]
    fn dram_caps_apply_beyond_slc() {
        let mut m = model();
        let l2 = m.steady_state_gibs(OpKind::LoadLdrZa, 4 << 20, 128);
        let dram = m.steady_state_gibs(OpKind::LoadLdrZa, 1 << 31, 128);
        assert!(
            dram < l2 / 2.0,
            "DRAM ({dram}) must be far below the cache plateau ({l2})"
        );
        assert!((dram - 120.0).abs() < 10.0, "DRAM load cap {dram}");
    }

    #[test]
    fn alignment_penalty_for_direct_loads() {
        let mut m = model();
        let aligned = m.steady_state_gibs(OpKind::LoadLdrZa, 1 << 20, 128);
        let misaligned = m.steady_state_gibs(OpKind::LoadLdrZa, 1 << 20, 16);
        assert!(misaligned < aligned * 0.8, "{misaligned} !< {aligned}");
        // One- and two-register loads are insensitive (Fig. 4b/4c).
        let a = m.steady_state_gibs(OpKind::LoadLd1Multi2, 1 << 20, 128);
        let b = m.steady_state_gibs(OpKind::LoadLd1Multi2, 1 << 20, 16);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn small_aligned_stores_get_a_boost() {
        let mut m = model();
        let small = m.steady_state_gibs(OpKind::StoreStrZa, 4 * 1024, 128);
        let large = m.steady_state_gibs(OpKind::StoreStrZa, 1 << 20, 128);
        assert!(small > large * 1.1, "small {small} vs large {large}");
    }

    #[test]
    fn footprint_tracking_grows_with_touched_lines() {
        let mut m = model();
        assert_eq!(m.working_set(), 0);
        m.access(OpKind::LoadLdrZa, 0, 64);
        m.access(OpKind::LoadLdrZa, 64, 64);
        m.access(OpKind::LoadLdrZa, 64, 64); // same line, no growth
        assert_eq!(m.working_set(), 128);
        assert_eq!(m.level_name(), "L1");
        m.reset_footprint();
        assert_eq!(m.working_set(), 0);
    }

    #[test]
    fn override_pins_the_level() {
        let mut m = model();
        m.set_working_set(Some(64 << 20));
        assert_eq!(m.level_name(), "DRAM");
        m.set_working_set(Some(16 << 20));
        assert_eq!(m.level_name(), "SLC");
        m.set_working_set(None);
        assert_eq!(m.level_name(), "L1");
    }

    #[test]
    fn loads_have_higher_latency_than_stores() {
        let mut m = model();
        let load = m.access(OpKind::LoadLd1Multi4, 0, 256);
        let store = m.access(OpKind::StoreSt1Multi4, 0, 256);
        assert!(load.latency > store.latency);
        assert!(load.interval > 0.0 && store.interval > 0.0);
    }
}
