//! Machine configuration: clocks, per-operation timings, cache hierarchy
//! and multicore topology.
//!
//! The [`MachineConfig::apple_m4`] preset is calibrated against the paper's
//! own measurements: the per-instruction throughputs reproduce Table I, the
//! outer-product latency reproduces the single-tile throughput drop reported
//! in §III-C, the memory rates reproduce the plateaus of Figs. 2–3 and the
//! topology reproduces the scaling of Fig. 1. The calibration constants are
//! documented inline next to the paper figure they target.

use crate::timing::op::OpKind;
use serde::{Deserialize, Serialize};
use sme_isa::types::StreamingVectorLength;
use std::collections::BTreeMap;

/// Kind of CPU core a kernel runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CoreKind {
    /// Performance core (the paper's "user-interactive" threads).
    Performance,
    /// Efficiency core (the paper's "utility" threads).
    Efficiency,
}

impl CoreKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            CoreKind::Performance => "P-core",
            CoreKind::Efficiency => "E-core",
        }
    }
}

/// Throughput and result latency of one operation kind on one core kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpTiming {
    /// Sustained issue throughput in operations per core cycle.
    pub per_cycle: f64,
    /// Cycles until a dependent operation can consume the result.
    pub latency: f64,
}

impl OpTiming {
    /// Construct a timing entry.
    pub fn new(per_cycle: f64, latency: f64) -> Self {
        assert!(per_cycle > 0.0, "throughput must be positive");
        assert!(latency >= 0.0, "latency must be non-negative");
        OpTiming { per_cycle, latency }
    }

    /// Issue interval in cycles (reciprocal throughput).
    pub fn interval(&self) -> f64 {
        1.0 / self.per_cycle
    }
}

/// Per-core timing table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreTimings {
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Per-operation timings; operations missing from the map use
    /// `default`.
    pub ops: BTreeMap<OpKind, OpTiming>,
    /// Fallback timing.
    pub default: OpTiming,
}

impl CoreTimings {
    /// Timing entry for an operation kind.
    pub fn op(&self, kind: OpKind) -> OpTiming {
        self.ops.get(&kind).copied().unwrap_or(self.default)
    }
}

/// One level of the modelled cache/memory hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Human-readable name ("L1", "L2", "SLC", "DRAM").
    pub name: String,
    /// Capacity in bytes (`u64::MAX` for the backing memory).
    pub capacity: u64,
    /// Absolute read bandwidth cap in GiB/s.
    pub load_cap_gibs: f64,
    /// Absolute write bandwidth cap in GiB/s.
    pub store_cap_gibs: f64,
    /// Additional load-to-use latency in core cycles.
    pub load_latency: f64,
}

impl MemTimings {
    /// Peak transfer rate of a memory strategy in bytes per core cycle
    /// (falling back to [`MemTimings::default_rate`] for kinds missing
    /// from the table) — the single home of this lookup for the tuner
    /// pre-filter and the routing heuristic.
    pub fn rate(&self, op: OpKind) -> f64 {
        self.strategy_rate
            .get(&op)
            .copied()
            .unwrap_or(self.default_rate)
    }
}

/// Memory-system timing parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemTimings {
    /// Cache hierarchy ordered from innermost to outermost.
    pub levels: Vec<CacheLevel>,
    /// Peak per-strategy transfer rate in bytes per core cycle (what the
    /// load/store pipes can sustain when the working set is cache
    /// resident); keyed by the memory [`OpKind`].
    pub strategy_rate: BTreeMap<OpKind, f64>,
    /// Minimum address alignment (bytes) required for the full strategy
    /// rate; absent entries have no alignment sensitivity.
    pub full_rate_alignment: BTreeMap<OpKind, u64>,
    /// Rate multiplier applied when the alignment requirement is not met.
    pub misaligned_factor: BTreeMap<OpKind, f64>,
    /// Working-set threshold (bytes) below which aligned stores get a
    /// bandwidth boost (the <8 KiB effect in Fig. 5).
    pub small_store_threshold: u64,
    /// Multiplier applied to ≥64-byte-aligned stores below the threshold.
    pub small_store_aligned_boost: f64,
    /// Fallback rate for memory kinds missing from `strategy_rate`.
    pub default_rate: f64,
}

/// Multicore topology and shared SME unit parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticoreConfig {
    /// Number of performance cores (4 on M4).
    pub p_cores: usize,
    /// Number of efficiency cores (6 on M4).
    pub e_cores: usize,
    /// Number of SME units (the paper's Fig. 1 analysis concludes two: one
    /// associated with the P-core cluster and one with the E-core cluster).
    pub sme_units: usize,
    /// Fractional throughput lost per additional thread sharing one SME
    /// unit (the 2009 → 1983 GFLOPS drop from one to four threads in
    /// §III-F corresponds to ≈ 0.43 % per extra sharer).
    pub sme_share_overhead: f64,
    /// Fraction of a user-interactive thread's work that spills to
    /// efficiency cores once all performance cores are busy (Fig. 1 shows
    /// each thread beyond four adding ≈ one E-core of Neon throughput).
    pub ui_spill_efficiency: f64,
    /// Per-additional-thread scaling loss inside the performance cluster
    /// for core-private (Neon) work: Fig. 1 reports 395 GFLOPS with four
    /// threads instead of the ideal 4 × 113 = 452, i.e. ≈ 4.2 % loss per
    /// extra thread.
    pub p_cluster_scaling_overhead: f64,
}

/// Full machine model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Streaming vector length (512 bits on M4).
    pub svl: StreamingVectorLength,
    /// Performance-core timing table.
    pub p_core: CoreTimings,
    /// Efficiency-core timing table.
    pub e_core: CoreTimings,
    /// Memory-system parameters.
    pub mem: MemTimings,
    /// Multicore topology.
    pub multicore: MulticoreConfig,
}

impl MachineConfig {
    /// Timing table for a core kind.
    pub fn core(&self, kind: CoreKind) -> &CoreTimings {
        match kind {
            CoreKind::Performance => &self.p_core,
            CoreKind::Efficiency => &self.e_core,
        }
    }

    /// The calibrated Apple M4 model used throughout the reproduction.
    pub fn apple_m4() -> Self {
        let svl = StreamingVectorLength::M4;

        // ---- performance core ------------------------------------------------
        // Clock: 4.4 GHz. The per-op throughputs below are chosen so that
        // `per_cycle * clock * ops_per_instruction` reproduces Table I.
        let mut p_ops = BTreeMap::new();
        // Neon FMLA: 3.21/cycle * 4.4 GHz * 8 FP32 ops = 113 GFLOPS
        // (FP16 → 226, FP64 → 56.5; Table I: 220 / 56).
        p_ops.insert(OpKind::NeonFmla, OpTiming::new(3.21, 3.0));
        // BFMMLA: 0.476/cycle * 4.4 * 32 = 67 GOPS.
        p_ops.insert(OpKind::NeonBfmmla, OpTiming::new(0.476, 4.0));
        p_ops.insert(OpKind::NeonOther, OpTiming::new(4.0, 2.0));
        // FMOPA (non-widening): 0.892/cycle * 4.4 * 512 = 2009 FP32 GFLOPS,
        // * 128 = 502 FP64 GFLOPS. The latency is four SME-unit issue slots
        // (4 / 0.892 ≈ 4.48 core cycles), which reproduces the 2009 → 502
        // GFLOPS drop when accumulating into a single ZA tile (§III-C) and
        // the observation that four tiles suffice for peak throughput.
        p_ops.insert(OpKind::SmeFmopaF32, OpTiming::new(0.892, 4.0 / 0.892));
        p_ops.insert(OpKind::SmeFmopaF64, OpTiming::new(0.892, 4.0 / 0.892));
        // Widening MOPA: 0.446/cycle * 4.4 * 1024 = 2010 GFLOPS (BF16/FP16),
        // * 2048 = 4018 GOPS (I8), * 1024 = 2010 GOPS (I16). Latency is four
        // unit slots, as for the non-widening forms.
        p_ops.insert(OpKind::SmeFmopaWide, OpTiming::new(0.446, 4.0 / 0.446));
        p_ops.insert(OpKind::SmeSmopaI8, OpTiming::new(0.446, 4.0 / 0.446));
        p_ops.insert(OpKind::SmeSmopaI16, OpTiming::new(0.446, 4.0 / 0.446));
        // SME2 multi-vector FMLA: 0.89/cycle * 4.4 * 128 = 501 FP32 GFLOPS,
        // * 64 = 251 FP64 GFLOPS.
        p_ops.insert(OpKind::SmeFmlaVec, OpTiming::new(0.89, 4.0));
        // SSVE single-vector FMLA: 0.222/cycle * 4.4 * 32 = 31 FP32 GFLOPS.
        p_ops.insert(OpKind::SsveFmla, OpTiming::new(0.222, 4.0));
        // MOVA rates chosen so the two-step ZA load path sustains the
        // 925 GiB/s of Fig. 2 (four-register groups) while single-register
        // moves keep up with single-vector loads.
        p_ops.insert(OpKind::SmeMova1, OpTiming::new(2.0, 2.0));
        p_ops.insert(OpKind::SmeMova2, OpTiming::new(1.4, 2.0));
        p_ops.insert(OpKind::SmeMova4, OpTiming::new(0.89, 2.0));
        p_ops.insert(OpKind::SmeZero, OpTiming::new(1.0, 4.0));
        p_ops.insert(OpKind::SmeControl, OpTiming::new(0.02, 0.0));
        p_ops.insert(OpKind::IntAlu, OpTiming::new(6.0, 1.0));
        p_ops.insert(OpKind::Branch, OpTiming::new(2.0, 1.0));
        p_ops.insert(OpKind::SvePred, OpTiming::new(1.0, 1.0));
        p_ops.insert(OpKind::SveOther, OpTiming::new(2.0, 2.0));
        let p_core = CoreTimings {
            clock_ghz: 4.4,
            ops: p_ops,
            default: OpTiming::new(2.0, 2.0),
        };

        // ---- efficiency core -------------------------------------------------
        // Clock: 2.89 GHz.
        let mut e_ops = BTreeMap::new();
        // Neon FMLA: 1.99/cycle * 2.89 * 8 = 46 GFLOPS (FP16 92, FP64 23).
        e_ops.insert(OpKind::NeonFmla, OpTiming::new(1.99, 3.0));
        // BFMMLA: 0.335/cycle * 2.89 * 32 = 31 GOPS.
        e_ops.insert(OpKind::NeonBfmmla, OpTiming::new(0.335, 4.0));
        e_ops.insert(OpKind::NeonOther, OpTiming::new(3.0, 2.0));
        // FMOPA: 0.241/cycle * 2.89 * 512 = 357 FP32 GFLOPS, * 128 = 89 FP64.
        e_ops.insert(OpKind::SmeFmopaF32, OpTiming::new(0.241, 4.0 / 0.241));
        e_ops.insert(OpKind::SmeFmopaF64, OpTiming::new(0.241, 4.0 / 0.241));
        // Widening: 0.1205/cycle * 2.89 * 1024 = 357 GFLOPS, I8 → 714 GOPS.
        e_ops.insert(OpKind::SmeFmopaWide, OpTiming::new(0.1205, 4.0 / 0.1205));
        e_ops.insert(OpKind::SmeSmopaI8, OpTiming::new(0.1205, 4.0 / 0.1205));
        e_ops.insert(OpKind::SmeSmopaI16, OpTiming::new(0.1205, 4.0 / 0.1205));
        // SME2 multi-vector FMLA: 0.484/cycle * 2.89 * 128 = 179 GFLOPS.
        e_ops.insert(OpKind::SmeFmlaVec, OpTiming::new(0.484, 4.0));
        // SSVE FMLA: 0.238/cycle * 2.89 * 32 = 22 GFLOPS.
        e_ops.insert(OpKind::SsveFmla, OpTiming::new(0.238, 4.0));
        e_ops.insert(OpKind::SmeMova1, OpTiming::new(1.0, 2.0));
        e_ops.insert(OpKind::SmeMova2, OpTiming::new(0.7, 2.0));
        e_ops.insert(OpKind::SmeMova4, OpTiming::new(0.45, 2.0));
        e_ops.insert(OpKind::SmeZero, OpTiming::new(0.5, 4.0));
        e_ops.insert(OpKind::SmeControl, OpTiming::new(0.02, 0.0));
        e_ops.insert(OpKind::IntAlu, OpTiming::new(4.0, 1.0));
        e_ops.insert(OpKind::Branch, OpTiming::new(1.5, 1.0));
        e_ops.insert(OpKind::SvePred, OpTiming::new(1.0, 1.0));
        e_ops.insert(OpKind::SveOther, OpTiming::new(1.5, 2.0));
        let e_core = CoreTimings {
            clock_ghz: 2.89,
            ops: e_ops,
            default: OpTiming::new(1.5, 2.0),
        };

        // ---- memory system ---------------------------------------------------
        // Strategy rates (bytes per P-core cycle): 1 B/cycle ≈ 4.1 GiB/s at
        // 4.4 GHz. Calibration targets from §III-G:
        //   LDR (array vector)   ≈ 375 GiB/s  → 91.5 B/cycle
        //   LD1W 4VR + MOVA      ≈ 925 GiB/s  → load pipe 240 B/cycle,
        //                                      pair limited by MOVA4 0.89/c
        //   LD1W 2VR             "significantly lower"  → 130 B/cycle
        //   STR (array vector)   ≈ 233 GiB/s  → 57 B/cycle
        //   ST1W variants        no improvement         → 54–60 B/cycle
        let mut strategy_rate = BTreeMap::new();
        strategy_rate.insert(OpKind::LoadLdrZa, 91.5);
        strategy_rate.insert(OpKind::LoadLd1Single, 91.5);
        strategy_rate.insert(OpKind::LoadLd1Multi2, 130.0);
        strategy_rate.insert(OpKind::LoadLd1Multi4, 240.0);
        strategy_rate.insert(OpKind::LoadLdrZ, 91.5);
        strategy_rate.insert(OpKind::NeonLoad, 64.0);
        strategy_rate.insert(OpKind::StoreStrZa, 57.0);
        strategy_rate.insert(OpKind::StoreSt1Single, 54.0);
        strategy_rate.insert(OpKind::StoreSt1Multi2, 58.0);
        strategy_rate.insert(OpKind::StoreSt1Multi4, 60.0);
        strategy_rate.insert(OpKind::StoreStrZ, 54.0);
        strategy_rate.insert(OpKind::NeonStore, 32.0);

        // Alignment sensitivity (Figs. 4–5): LDR (array vector) needs 64-byte
        // alignment for full bandwidth; the four-register load needs 128-byte
        // alignment; the one- and two-register variants are insensitive.
        let mut full_rate_alignment = BTreeMap::new();
        full_rate_alignment.insert(OpKind::LoadLdrZa, 64);
        full_rate_alignment.insert(OpKind::LoadLd1Multi4, 128);
        let mut misaligned_factor = BTreeMap::new();
        misaligned_factor.insert(OpKind::LoadLdrZa, 0.70);
        misaligned_factor.insert(OpKind::LoadLd1Multi4, 0.75);

        let mem = MemTimings {
            levels: vec![
                CacheLevel {
                    name: "L1".into(),
                    capacity: 128 * 1024,
                    load_cap_gibs: f64::INFINITY,
                    store_cap_gibs: f64::INFINITY,
                    load_latency: 6.0,
                },
                // The bandwidth plateaus of Figs. 2–3 extend to ≈ 8 MiB.
                CacheLevel {
                    name: "L2".into(),
                    capacity: 8 * 1024 * 1024,
                    load_cap_gibs: f64::INFINITY,
                    store_cap_gibs: f64::INFINITY,
                    load_latency: 22.0,
                },
                CacheLevel {
                    name: "SLC".into(),
                    capacity: 36 * 1024 * 1024,
                    load_cap_gibs: 460.0,
                    store_cap_gibs: 220.0,
                    load_latency: 60.0,
                },
                CacheLevel {
                    name: "DRAM".into(),
                    capacity: u64::MAX,
                    load_cap_gibs: 120.0,
                    store_cap_gibs: 90.0,
                    load_latency: 130.0,
                },
            ],
            strategy_rate,
            full_rate_alignment,
            misaligned_factor,
            small_store_threshold: 8 * 1024,
            small_store_aligned_boost: 1.15,
            default_rate: 48.0,
        };

        let multicore = MulticoreConfig {
            p_cores: 4,
            e_cores: 6,
            sme_units: 2,
            sme_share_overhead: 0.0043,
            ui_spill_efficiency: 1.0,
            p_cluster_scaling_overhead: 0.042,
        };

        MachineConfig {
            svl,
            p_core,
            e_core,
            mem,
            multicore,
        }
    }

    /// A hypothetical machine with a different streaming vector length but
    /// otherwise M4-like timing (used by what-if experiments and tests).
    pub fn with_svl(svl_bits: u32) -> Self {
        let mut cfg = Self::apple_m4();
        cfg.svl = StreamingVectorLength::new(svl_bits);
        cfg
    }

    /// Peak throughput of issuing `op` back-to-back on one core of `kind`,
    /// in GFLOPS/GOPS, given the operations each instruction performs (the
    /// Table I microbenchmark quantity).
    pub fn peak_gflops(&self, kind: CoreKind, op: OpKind, ops_per_inst: f64) -> f64 {
        let core = self.core(kind);
        core.op(op).per_cycle * core.clock_ghz * ops_per_inst
    }

    /// A stable 64-bit fingerprint of every timing parameter of the model.
    ///
    /// Persisted artifacts tuned against the timing model (the
    /// `sme-runtime` plan store) stamp themselves with this value so a later
    /// process can detect that the calibration changed and re-tune instead
    /// of silently dispatching stale winners. The hash is FNV-1a over a
    /// fixed-order serialization of the fields (`BTreeMap` iteration is
    /// sorted, `f64`s hash by bit pattern), so it is reproducible across
    /// runs, platforms and — unlike `DefaultHasher` — Rust releases.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.svl.bits() as u64);
        for core in [&self.p_core, &self.e_core] {
            h.write_f64(core.clock_ghz);
            h.write_f64(core.default.per_cycle);
            h.write_f64(core.default.latency);
            for (kind, timing) in &core.ops {
                h.write_str(&format!("{kind:?}"));
                h.write_f64(timing.per_cycle);
                h.write_f64(timing.latency);
            }
        }
        for level in &self.mem.levels {
            h.write_str(&level.name);
            h.write_u64(level.capacity);
            h.write_f64(level.load_cap_gibs);
            h.write_f64(level.store_cap_gibs);
            h.write_f64(level.load_latency);
        }
        for (kind, rate) in &self.mem.strategy_rate {
            h.write_str(&format!("{kind:?}"));
            h.write_f64(*rate);
        }
        for (kind, align) in &self.mem.full_rate_alignment {
            h.write_str(&format!("{kind:?}"));
            h.write_u64(*align);
        }
        for (kind, factor) in &self.mem.misaligned_factor {
            h.write_str(&format!("{kind:?}"));
            h.write_f64(*factor);
        }
        h.write_u64(self.mem.small_store_threshold);
        h.write_f64(self.mem.small_store_aligned_boost);
        h.write_f64(self.mem.default_rate);
        let mc = &self.multicore;
        h.write_u64(mc.p_cores as u64);
        h.write_u64(mc.e_cores as u64);
        h.write_u64(mc.sme_units as u64);
        h.write_f64(mc.sme_share_overhead);
        h.write_f64(mc.ui_spill_efficiency);
        h.write_f64(mc.p_cluster_scaling_overhead);
        h.finish()
    }
}

/// Minimal FNV-1a hasher used by [`MachineConfig::fingerprint`] (the
/// standard library's `DefaultHasher` is explicitly not stable across
/// releases).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        // Length terminator so "ab"+"c" and "a"+"bc" hash differently.
        self.write_u64(s.len() as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::apple_m4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// GFLOPS produced by issuing `kind` back-to-back with operations that
    /// never stall (the Table I microbenchmark situation).
    fn peak_gflops(cfg: &MachineConfig, kind: CoreKind, op: OpKind, ops_per_inst: f64) -> f64 {
        cfg.peak_gflops(kind, op, ops_per_inst)
    }

    #[test]
    fn fingerprint_is_stable_and_timing_sensitive() {
        let base = MachineConfig::apple_m4();
        assert_eq!(
            base.fingerprint(),
            MachineConfig::apple_m4().fingerprint(),
            "identical configs must fingerprint identically"
        );
        // Every class of timing parameter moves the fingerprint.
        let mut clock = base.clone();
        clock.p_core.clock_ghz = 4.5;
        assert_ne!(clock.fingerprint(), base.fingerprint());
        let mut op = base.clone();
        op.e_core
            .ops
            .insert(OpKind::NeonFmla, OpTiming::new(2.0, 3.0));
        assert_ne!(op.fingerprint(), base.fingerprint());
        let mut mem = base.clone();
        mem.mem.default_rate += 1.0;
        assert_ne!(mem.fingerprint(), base.fingerprint());
        let mut topo = base.clone();
        topo.multicore.sme_units = 1;
        assert_ne!(topo.fingerprint(), base.fingerprint());
        let svl = MachineConfig::with_svl(256);
        assert_ne!(svl.fingerprint(), base.fingerprint());
    }

    #[test]
    fn table_one_calibration_p_core() {
        let cfg = MachineConfig::apple_m4();
        let p = CoreKind::Performance;
        assert!((peak_gflops(&cfg, p, OpKind::NeonFmla, 8.0) - 113.0).abs() < 1.5);
        assert!((peak_gflops(&cfg, p, OpKind::NeonFmla, 4.0) - 56.0).abs() < 1.0);
        assert!((peak_gflops(&cfg, p, OpKind::NeonFmla, 16.0) - 220.0).abs() < 7.0);
        assert!((peak_gflops(&cfg, p, OpKind::NeonBfmmla, 32.0) - 67.0).abs() < 1.0);
        assert!((peak_gflops(&cfg, p, OpKind::SmeFmopaF32, 512.0) - 2009.0).abs() < 5.0);
        assert!((peak_gflops(&cfg, p, OpKind::SmeFmopaF64, 128.0) - 503.0).abs() < 2.0);
        assert!((peak_gflops(&cfg, p, OpKind::SmeFmopaWide, 1024.0) - 2010.0).abs() < 5.0);
        assert!((peak_gflops(&cfg, p, OpKind::SmeSmopaI8, 2048.0) - 4017.0).abs() < 10.0);
        assert!((peak_gflops(&cfg, p, OpKind::SmeSmopaI16, 1024.0) - 2010.0).abs() < 5.0);
        assert!((peak_gflops(&cfg, p, OpKind::SmeFmlaVec, 128.0) - 501.0).abs() < 1.5);
        assert!((peak_gflops(&cfg, p, OpKind::SmeFmlaVec, 64.0) - 251.0).abs() < 1.0);
        assert!((peak_gflops(&cfg, p, OpKind::SsveFmla, 32.0) - 31.0).abs() < 1.0);
    }

    #[test]
    fn table_one_calibration_e_core() {
        let cfg = MachineConfig::apple_m4();
        let e = CoreKind::Efficiency;
        assert!((peak_gflops(&cfg, e, OpKind::NeonFmla, 8.0) - 46.0).abs() < 1.0);
        assert!((peak_gflops(&cfg, e, OpKind::NeonFmla, 16.0) - 91.0).abs() < 2.5);
        assert!((peak_gflops(&cfg, e, OpKind::NeonFmla, 4.0) - 23.0).abs() < 0.5);
        assert!((peak_gflops(&cfg, e, OpKind::NeonBfmmla, 32.0) - 31.0).abs() < 0.5);
        assert!((peak_gflops(&cfg, e, OpKind::SmeFmopaF32, 512.0) - 357.0).abs() < 1.5);
        assert!((peak_gflops(&cfg, e, OpKind::SmeFmopaF64, 128.0) - 89.0).abs() < 0.5);
        assert!((peak_gflops(&cfg, e, OpKind::SmeSmopaI8, 2048.0) - 715.0).abs() < 3.0);
        assert!((peak_gflops(&cfg, e, OpKind::SmeFmlaVec, 128.0) - 179.0).abs() < 1.0);
        assert!((peak_gflops(&cfg, e, OpKind::SsveFmla, 32.0) - 22.0).abs() < 0.5);
    }

    #[test]
    fn single_tile_latency_matches_paper() {
        // With only one ZA tile the FMOPA dependency chain limits
        // throughput to 1/latency per cycle: 2009/4 ≈ 502 GFLOPS (§III-C).
        let cfg = MachineConfig::apple_m4();
        let t = cfg.p_core.op(OpKind::SmeFmopaF32);
        let chained = cfg.p_core.clock_ghz / t.latency * 512.0;
        assert!((chained - 502.0).abs() < 2.0, "got {chained}");
    }

    #[test]
    fn memory_rates_match_figure_plateaus() {
        let cfg = MachineConfig::apple_m4();
        let to_gibs = |bpc: f64| bpc * cfg.p_core.clock_ghz * 1e9 / (1u64 << 30) as f64;
        let ldr = to_gibs(cfg.mem.strategy_rate[&OpKind::LoadLdrZa]);
        assert!((ldr - 375.0).abs() < 10.0, "LDR plateau {ldr}");
        let str_za = to_gibs(cfg.mem.strategy_rate[&OpKind::StoreStrZa]);
        assert!((str_za - 233.0).abs() < 10.0, "STR plateau {str_za}");
        // Four-register loads must exceed 925 GiB/s on the load pipe so the
        // MOVA rate becomes the limiter.
        assert!(to_gibs(cfg.mem.strategy_rate[&OpKind::LoadLd1Multi4]) > 925.0);
    }

    #[test]
    fn topology_matches_m4() {
        let cfg = MachineConfig::apple_m4();
        assert_eq!(cfg.multicore.p_cores, 4);
        assert_eq!(cfg.multicore.e_cores, 6);
        assert_eq!(cfg.multicore.sme_units, 2);
        assert_eq!(cfg.svl.bits(), 512);
    }

    #[test]
    fn defaults_and_lookup() {
        let cfg = MachineConfig::default();
        assert_eq!(cfg.core(CoreKind::Performance).clock_ghz, 4.4);
        assert_eq!(cfg.core(CoreKind::Efficiency).clock_ghz, 2.89);
        // Unknown op kinds fall back to the default timing.
        let t = cfg.p_core.op(OpKind::NeonLoad);
        assert_eq!(t, cfg.p_core.default);
        let custom = MachineConfig::with_svl(256);
        assert_eq!(custom.svl.bits(), 256);
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn op_timing_validated() {
        let _ = OpTiming::new(0.0, 1.0);
    }
}
