//! Integration tests that execute the paper's code listings end-to-end on
//! the simulator: the Lst. 1 / Lst. 2 peak-throughput loops, the Lst. 3
//! two-step ZA load and the Lst. 5 in-register transposition.

use sme_isa::asm::Assembler;
use sme_isa::inst::{NeonInst, ScalarInst, SmeInst, SveInst};
use sme_isa::regs::short::*;
use sme_isa::regs::{TileSliceDir, ZaTile};
use sme_isa::types::{ElementType, NeonArrangement};
use sme_machine::exec::{RunOptions, Simulator};

/// Lst. 1: the Neon FMLA repeat loop returns 30·8 = 240 as its per-iteration
/// operation count and leaves the accumulators holding `reps · a · b`.
#[test]
fn listing_one_neon_loop() {
    let mut a = Assembler::new("listing1");
    let top = a.new_label();
    a.bind(top);
    a.push(ScalarInst::SubImm {
        rd: x(0),
        rn: x(0),
        imm12: 1,
        shift12: false,
    });
    for d in 0..30u8 {
        a.push(NeonInst::fmla_vec(v(d), v(30), v(31), NeonArrangement::S4));
    }
    a.cbnz(x(0), top);
    a.push(ScalarInst::mov_imm16(x(0), 30 * 8));
    a.ret();
    let program = a.finish();

    let mut sim = Simulator::m4_performance();
    sim.state.set_v_f32(v(30), [2.0; 4]);
    sim.state.set_v_f32(v(31), [3.0; 4]);
    let reps = 10u64;
    let result = sim.run(&program, &[reps], &RunOptions::functional_only());
    assert_eq!(result.return_value, 240);
    assert_eq!(sim.state.v_f32(v(0)), [60.0; 4], "10 iterations of += 2*3");
    assert_eq!(sim.state.v_f32(v(29)), [60.0; 4]);
}

/// Lst. 2: the FMOPA repeat loop accumulates `reps · 8` outer products into
/// each of the four FP32 tiles (32 FMOPAs rotate over 4 tiles).
#[test]
fn listing_two_fmopa_loop() {
    let mut a = Assembler::new("listing2");
    a.push(SveInst::ptrue(p(0), ElementType::I8));
    a.push(SveInst::ptrue(p(1), ElementType::I8));
    let top = a.new_label();
    a.bind(top);
    a.push(ScalarInst::SubImm {
        rd: x(0),
        rn: x(0),
        imm12: 1,
        shift12: false,
    });
    for i in 0..32u8 {
        a.push(SmeInst::fmopa_f32(i % 4, p(0), p(1), z(0), z(1)));
    }
    a.cbnz(x(0), top);
    a.mov_imm64(x(0), 32 * 512);
    a.ret();
    let program = a.finish();

    let mut sim = Simulator::m4_performance();
    sim.state.set_z_f32(z(0), &[1.0; 16]);
    sim.state.set_z_f32(z(1), &[0.5; 16]);
    let reps = 4u64;
    let result = sim.run(&program, &[reps], &RunOptions::functional_only());
    assert_eq!(result.return_value, 32 * 512);
    // Each tile receives 8 outer products per iteration: 4 * 8 * (1 * 0.5).
    for tile in 0..4u8 {
        assert_eq!(sim.state.za_f32(tile, 7, 11), 16.0, "tile {tile}");
    }
}

/// Lst. 3: load 256 bytes into four vector registers and move them into the
/// ZA array as a group — the two-step load strategy.
#[test]
fn listing_three_two_step_load() {
    let mut a = Assembler::new("listing3");
    a.push(SveInst::ptrue_cnt(pn(8), ElementType::F32));
    a.push(ScalarInst::mov_imm16(x(12), 0));
    a.push(SveInst::ld1w_multi(z(0), 4, pn(8), x(0), 0));
    a.push(SmeInst::MovaToTile {
        tile: ZaTile::s(0),
        dir: TileSliceDir::Horizontal,
        rs: x(12),
        offset: 0,
        zt: z(0),
        count: 4,
    });
    a.ret();
    let program = a.finish();

    let mut sim = Simulator::m4_performance();
    let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let addr = sim.mem.alloc_f32(&data, 128);
    sim.run(&program, &[addr], &RunOptions::functional_only());
    // Horizontal slices 0..3 of za0.s now hold the four loaded vectors.
    for slice in 0..4 {
        for lane in 0..16 {
            assert_eq!(
                sim.state.za_f32(0, slice, lane),
                (slice * 16 + lane) as f32,
                "slice {slice} lane {lane}"
            );
        }
    }
}

/// Lst. 5: writing a 16×16 block through the horizontal view and reading it
/// back through the vertical view transposes it.
#[test]
fn listing_five_transposes_a_block() {
    let mut a = Assembler::new("listing5");
    a.push(SveInst::ptrue_cnt(pn(8), ElementType::F32));
    a.push(ScalarInst::mov_imm16(x(12), 0));
    // Load 16 vectors (a full 16x16 block, one column per vector).
    for g in 0..4i8 {
        a.push(SveInst::ld1w_multi(z((g as u8) * 4), 4, pn(8), x(0), g));
    }
    // mov za0h.s[w12, g*4 : g*4+3], {z(g*4)..z(g*4+3)}
    for g in 0..4u8 {
        a.push(SmeInst::MovaToTile {
            tile: ZaTile::s(0),
            dir: TileSliceDir::Horizontal,
            rs: x(12),
            offset: g * 4,
            zt: z(g * 4),
            count: 4,
        });
    }
    // mov {z16+g*4..}, za0v.s[w12, g*4 : g*4+3]
    for g in 0..4u8 {
        a.push(SmeInst::MovaFromTile {
            tile: ZaTile::s(0),
            dir: TileSliceDir::Vertical,
            rs: x(12),
            offset: g * 4,
            zt: z(16 + g * 4),
            count: 4,
        });
    }
    // Store the transposed block to the destination buffer.
    for g in 0..4i8 {
        a.push(SveInst::st1w_multi(
            z(16 + (g as u8) * 4),
            4,
            pn(8),
            x(1),
            g,
        ));
    }
    a.ret();
    let program = a.finish();

    let mut sim = Simulator::m4_performance();
    let block: Vec<f32> = (0..256).map(|i| i as f32).collect();
    let src = sim.mem.alloc_f32(&block, 128);
    let dst = sim.mem.alloc_f32_zeroed(256, 128);
    sim.run(&program, &[src, dst], &RunOptions::functional_only());
    let out = sim.mem.read_f32_slice(dst, 256);
    for row in 0..16 {
        for col in 0..16 {
            assert_eq!(
                out[row * 16 + col],
                block[col * 16 + row],
                "transposed element ({row},{col})"
            );
        }
    }
}

/// The §III-C observation reproduced at the listing level: the same Lst. 2
/// loop restricted to a single tile is about four times slower.
#[test]
fn single_tile_loop_is_four_times_slower() {
    let build = |tiles: u8| {
        let mut a = Assembler::new("fmopa");
        a.push(SveInst::ptrue(p(0), ElementType::I8));
        a.push(SveInst::ptrue(p(1), ElementType::I8));
        let top = a.new_label();
        a.bind(top);
        a.push(ScalarInst::SubImm {
            rd: x(0),
            rn: x(0),
            imm12: 1,
            shift12: false,
        });
        for i in 0..32u8 {
            a.push(SmeInst::fmopa_f32(i % tiles, p(0), p(1), z(0), z(1)));
        }
        a.cbnz(x(0), top);
        a.ret();
        a.finish()
    };
    let mut sim = Simulator::m4_performance();
    let four = sim
        .run(&build(4), &[200], &RunOptions::timing_only())
        .stats
        .cycles;
    let mut sim = Simulator::m4_performance();
    let one = sim
        .run(&build(1), &[200], &RunOptions::timing_only())
        .stats
        .cycles;
    let ratio = one / four;
    assert!((ratio - 4.0).abs() < 0.3, "single-tile slowdown {ratio}");
}
