//! Property-based sweep of the packed-operand cache.
//!
//! The serving guarantee: a dispatch whose operand images replay from the
//! [`sme_runtime::PackedOperandCache`] is **bit-identical** to one that
//! repacks them from the seed — including after the entries are
//! invalidated, when the next dispatch must transparently repack and
//! produce the same bytes again.

use proptest::prelude::*;
use sme_runtime::{AnyGemmConfig, GemmConfig, GemmRequest, GemmService, WideningGemmConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pack-hit dispatches and repack dispatches agree bit for bit, before
    /// and after invalidation, for mixed FP32/widening traffic.
    #[test]
    fn pack_hits_are_bit_identical_to_repacks_across_invalidation(
        shape in (1usize..=48, 1usize..=48, 1usize..=12, 1usize..=4, 1usize..=8, 0u64..1000),
    ) {
        let (m, n, k2, w32, wk2, seed) = shape;
        let fp32 = GemmConfig::abt(m, n, 2 * k2);
        let widening = WideningGemmConfig::new(32 * w32.min(2), 32, 2 * wk2)
            .expect("on the widening envelope grid");
        let requests = [
            GemmRequest::fp32(fp32, seed),
            GemmRequest::widening(widening, seed),
            GemmRequest::fp32(fp32, seed), // same operands: pack hit within the batch
        ];

        let service = GemmService::new(16);
        let cold = service.dispatch(&requests).expect("valid batch");
        let warm = service.dispatch(&requests).expect("valid batch");
        prop_assert_eq!(&cold.outputs, &warm.outputs, "hit path must replay exact bytes");

        let packs = service.cache().packs().stats();
        prop_assert_eq!(packs.misses, 2, "one pack per distinct operand set");
        prop_assert_eq!(packs.hits, 4, "repeats inside and across batches hit");
        prop_assert_eq!(warm.pack_hit_ratio(), 1.0, "warm batch is all pack hits");

        // Invalidation drops the packed entries; the next dispatch repacks
        // from the seed and must reproduce the same outputs.
        service.cache().invalidate(&fp32);
        service
            .cache()
            .invalidate_any(&AnyGemmConfig::WideningBf16(widening));
        prop_assert!(service.cache().packs().is_empty(), "all entries invalidated");
        let repacked = service.dispatch(&requests).expect("valid batch");
        prop_assert_eq!(&cold.outputs, &repacked.outputs, "repack after invalidation agrees");
        prop_assert_eq!(
            service.cache().packs().stats().misses, 4,
            "invalidated operand sets packed again"
        );
    }
}
