//! The workspace-level serving error taxonomy.
//!
//! Before this module, failure on the serving path was ad hoc: invalid
//! configurations surfaced as [`sme_gemm::GemmError`], everything else
//! panicked (lock poisoning, kernel bugs) or was stringly typed (snapshot
//! I/O). [`ServeError`] names the failure modes the *serving* layer is
//! expected to survive, so reports can say exactly how far down the
//! degradation ladder a request travelled:
//!
//! 1. serve on the routed backend;
//! 2. on compile failure or a panic, retry once on the fallback backend
//!    ([`crate::service`]);
//! 3. only if both backends fail, reject that request — never the batch.

use sme_gemm::{Backend, GemmError};
use std::fmt;

/// Why a request (or a background component) failed after the serving
/// layer exhausted its degradation ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The configuration itself is invalid — no backend could ever serve
    /// it, so no fallback is attempted.
    Gemm(GemmError),
    /// Compiling (or fetching) a kernel failed on the named backend.
    Compile {
        /// The backend that failed to produce a kernel.
        backend: Backend,
        /// The underlying compile error.
        detail: String,
    },
    /// A dispatch group panicked mid-execution on the named backend; the
    /// panic was caught at the group boundary.
    ExecPanic {
        /// The backend the group was executing on.
        backend: Backend,
        /// The panic payload, stringified.
        detail: String,
    },
    /// A snapshot could not be saved or loaded.
    Snapshot {
        /// The file involved.
        path: String,
        /// The underlying error.
        detail: String,
    },
    /// A background daemon operation failed.
    Daemon {
        /// The underlying error.
        detail: String,
    },
}

impl ServeError {
    /// Stable snake-case category name (used in failure reports and
    /// metrics labels).
    pub fn category(&self) -> &'static str {
        match self {
            ServeError::Gemm(_) => "invalid_config",
            ServeError::Compile { .. } => "compile",
            ServeError::ExecPanic { .. } => "exec_panic",
            ServeError::Snapshot { .. } => "snapshot",
            ServeError::Daemon { .. } => "daemon",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Gemm(e) => write!(f, "invalid configuration: {e}"),
            ServeError::Compile { backend, detail } => {
                write!(f, "compile failed on {backend}: {detail}")
            }
            ServeError::ExecPanic { backend, detail } => {
                write!(f, "group panicked on {backend}: {detail}")
            }
            ServeError::Snapshot { path, detail } => {
                write!(f, "snapshot failure at {path}: {detail}")
            }
            ServeError::Daemon { detail } => write!(f, "daemon failure: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<GemmError> for ServeError {
    fn from(e: GemmError) -> Self {
        ServeError::Gemm(e)
    }
}
