//! Lock-poison recovery for the serving stack.
//!
//! A poisoned `Mutex`/`RwLock` means a thread panicked while holding the
//! guard. For the serving layer that is a *degradation*, not a death
//! sentence: every lock in this workspace guards either a cache (safe to
//! clear), a statistics block, or a store that is structurally valid at
//! every instruction boundary. These helpers recover the guard, clear the
//! poison flag so later lockers do not trip over it, and count the event in
//! `sme_lock_poisoned_total` (process-wide, plus the metrics hub when one
//! is attached). The *caller* decides whether to additionally clear the
//! guarded data — shard caches do, stores do not.

use sme_obs::metrics::Counter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

static RECOVERED: AtomicU64 = AtomicU64::new(0);

fn obs_counter() -> &'static OnceLock<Counter> {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    &COUNTER
}

/// Attach the `sme_lock_poisoned_total` counter from a metrics hub. Only
/// the first attachment wins (mirroring the cache's `attach_obs`
/// semantics); recoveries are always counted process-wide regardless.
pub fn attach_counter(counter: Counter) {
    let _ = obs_counter().set(counter);
}

/// Total lock-poison recoveries since process start.
pub fn recovered_total() -> u64 {
    RECOVERED.load(Ordering::Relaxed)
}

fn note(component: &'static str) {
    RECOVERED.fetch_add(1, Ordering::Relaxed);
    if let Some(counter) = obs_counter().get() {
        counter.inc();
    }
    eprintln!("sme-runtime: recovered poisoned lock in {component}");
}

/// Lock a mutex, recovering (and clearing) poison instead of panicking.
pub fn lock<'a, T>(mutex: &'a Mutex<T>, component: &'static str) -> MutexGuard<'a, T> {
    lock_recovering(mutex, component).0
}

/// Like [`lock`], but also reports whether poison was recovered on *this*
/// call, so cache-like callers can clear the guarded data they no longer
/// trust.
pub fn lock_recovering<'a, T>(
    mutex: &'a Mutex<T>,
    component: &'static str,
) -> (MutexGuard<'a, T>, bool) {
    match mutex.lock() {
        Ok(guard) => (guard, false),
        Err(poisoned) => {
            note(component);
            mutex.clear_poison();
            (poisoned.into_inner(), true)
        }
    }
}

/// Read-lock an `RwLock`, recovering (and clearing) poison instead of
/// panicking.
pub fn read<'a, T>(rwlock: &'a RwLock<T>, component: &'static str) -> RwLockReadGuard<'a, T> {
    match rwlock.read() {
        Ok(guard) => guard,
        Err(poisoned) => {
            note(component);
            rwlock.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Write-lock an `RwLock`, recovering (and clearing) poison instead of
/// panicking.
pub fn write<'a, T>(rwlock: &'a RwLock<T>, component: &'static str) -> RwLockWriteGuard<'a, T> {
    match rwlock.write() {
        Ok(guard) => guard,
        Err(poisoned) => {
            note(component);
            rwlock.clear_poison();
            poisoned.into_inner()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn poisoned_mutexes_are_recovered_and_counted() {
        let mutex = Arc::new(Mutex::new(41));
        let clone = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().expect("first lock");
            panic!("poison it");
        })
        .join();
        assert!(mutex.is_poisoned(), "thread panic must poison the lock");

        let before = recovered_total();
        {
            let mut guard = lock(&mutex, "test-mutex");
            *guard += 1;
        }
        assert_eq!(recovered_total(), before + 1);
        assert!(!mutex.is_poisoned(), "poison flag must be cleared");
        // Later lockers see a healthy lock and the data survives.
        assert_eq!(*lock(&mutex, "test-mutex"), 42);
        assert_eq!(recovered_total(), before + 1, "healthy locks are free");
    }

    #[test]
    fn poisoned_rwlocks_are_recovered_on_both_paths() {
        let rw = Arc::new(RwLock::new(vec![1, 2, 3]));
        let clone = Arc::clone(&rw);
        let _ = std::thread::spawn(move || {
            let _guard = clone.write().expect("first write");
            panic!("poison it");
        })
        .join();
        assert!(rw.is_poisoned());

        let before = recovered_total();
        assert_eq!(read(&rw, "test-rwlock").len(), 3);
        assert_eq!(recovered_total(), before + 1);
        write(&rw, "test-rwlock").push(4);
        assert_eq!(read(&rw, "test-rwlock").len(), 4);
        assert_eq!(recovered_total(), before + 1, "cleared poison stays clear");
    }
}
