//! The packed-operand cache: reuse materialised operand images across
//! dispatches of the same operands.
//!
//! Serving traffic is dominated by *repeated* operands — the same weights
//! multiplied against a stream of activations. Every dispatch used to pay
//! the full packing cost: regenerating the pseudo-random A/B matrices from
//! their seed and (for the widening kernels) re-packing them into the
//! backend's BF16 tile layout. The [`PackedOperandCache`] closes that gap:
//! it caches the finished [`OperandImages`] — the exact byte images a
//! kernel expects in memory — keyed by **operand identity × layout ×
//! datatype**, and replays them through
//! [`sme_gemm::RoutedKernel::allocate_buffers_packed`] on a hit. The C
//! buffer is never cached: it is an output, refreshed from its seed on
//! every dispatch, so the hit path is bit-identical to the repack path.
//!
//! The key scheme:
//! - **operand identity** — the request seed the A/B contents derive from,
//! - **layout** — the configuration (shape, leading dimensions, B storage
//!   order) plus the [`PackLayout`] of the image bytes (plain FP32, or one
//!   of the two packed-BF16 tile layouts),
//! - **datatype** — carried inside the [`AnyGemmConfig`], so FP32 and
//!   widening images of one shape never alias.
//!
//! Both FP32 backends read the same plain images, so a router flipping a
//! shape between SME and Neon keeps its pack hits; the widening backends
//! use different tile layouts and therefore different entries.
//!
//! Eviction is a bounded LRU over entries (most recently used last, like
//! the kernel cache's shards). Invalidation is wired into the kernel
//! cache: [`crate::cache::KernelCache::invalidate_any`] and
//! [`crate::cache::KernelCache::replace_store`] drop the corresponding
//! packed entries, so stale operand images can never outlive their
//! configuration's kernels.

use sme_gemm::{AnyGemmConfig, Backend, Dtype, OperandImages, RoutedKernel};
use sme_obs::{Counter, Gauge, ObsHub};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// The byte layout of a cached operand image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackLayout {
    /// Plain column-/row-major little-endian FP32 (both FP32 backends).
    PlainF32,
    /// Packed BF16, ZA-interleaved layout (the SME widening kernel).
    InterleavedBf16,
    /// Packed BF16, `BFMMLA` 2×4 tile layout (the Neon widening kernel).
    MmlaBf16,
}

impl PackLayout {
    /// The layout of the images `kernel.pack_operands` produces.
    pub fn for_kernel(kernel: &RoutedKernel) -> PackLayout {
        match (kernel.dtype(), kernel.backend()) {
            (Dtype::Fp32, _) => PackLayout::PlainF32,
            (Dtype::WideningBf16, Backend::Sme) => PackLayout::InterleavedBf16,
            (Dtype::WideningBf16, Backend::Neon) => PackLayout::MmlaBf16,
        }
    }
}

/// Cache key: one operand set packed in one layout for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackKey {
    /// The seed identifying the A/B operand contents.
    pub seed: u64,
    /// The configuration whose geometry shaped the images (datatype,
    /// shape, leading dimensions, B storage order).
    pub config: AnyGemmConfig,
    /// The byte layout of the images.
    pub layout: PackLayout,
}

/// Monotonic counters describing pack-cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackStats {
    /// Dispatches whose operand images were served from the cache.
    pub hits: u64,
    /// Dispatches that had to pack the operands.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Entries dropped by configuration invalidation (kernel-cache
    /// invalidation and plan-store replacement included).
    pub invalidations: u64,
}

impl PackStats {
    /// Fraction of dispatches served from the cache (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct PackInner {
    /// LRU list, most recently used last (entry counts are small enough
    /// that a vector scan beats a linked-list LRU — same trade as the
    /// kernel cache's shards).
    entries: Vec<(PackKey, Arc<OperandImages>)>,
    stats: PackStats,
    resident_bytes: usize,
}

/// Pre-resolved observability handles (attached once, updated on the hot
/// path with atomic increments only).
#[derive(Debug)]
struct PackObs {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    invalidations: Counter,
    hit_ratio: Gauge,
    resident_bytes: Gauge,
}

impl PackObs {
    fn update_hit_ratio(&self) {
        let hits = self.hits.get() as f64;
        let total = hits + self.misses.get() as f64;
        if total > 0.0 {
            self.hit_ratio.set(hits / total);
        }
    }
}

/// A bounded, thread-safe cache of packed operand images (see the module
/// docs for the key scheme and eviction policy).
#[derive(Debug)]
pub struct PackedOperandCache {
    inner: Mutex<PackInner>,
    capacity: usize,
    obs: OnceLock<PackObs>,
}

impl PackedOperandCache {
    /// Create a cache bounded to `capacity` operand sets.
    pub fn new(capacity: usize) -> Self {
        PackedOperandCache {
            inner: Mutex::new(PackInner::default()),
            capacity: capacity.max(1),
            obs: OnceLock::new(),
        }
    }

    /// Attach an observability hub: pack hit/miss/eviction/invalidation
    /// counters, the pack-hit-ratio gauge and the resident-bytes gauge are
    /// reported to it from then on. Only the first attach wins.
    pub fn attach_obs(&self, hub: &ObsHub) {
        let _ = self.obs.set(PackObs {
            hits: hub.metrics.counter("sme_pack_hits_total"),
            misses: hub.metrics.counter("sme_pack_misses_total"),
            evictions: hub.metrics.counter("sme_pack_evictions_total"),
            invalidations: hub.metrics.counter("sme_pack_invalidations_total"),
            hit_ratio: hub.metrics.gauge("sme_pack_hit_ratio"),
            resident_bytes: hub.metrics.gauge("sme_pack_resident_bytes"),
        });
    }

    /// Lock the cache interior, recovering from poison instead of
    /// panicking: a panic mid-update may have left the entry list and the
    /// resident-bytes accounting out of sync, so a recovered cache is
    /// emptied (counted as invalidations) — it is only a cache, the next
    /// dispatch repacks. The recovery is counted in
    /// `sme_lock_poisoned_total` (see [`crate::poison`]).
    fn lock_inner(&self) -> MutexGuard<'_, PackInner> {
        let (mut inner, recovered) =
            crate::poison::lock_recovering(&self.inner, "packed-operand cache");
        if recovered {
            let dropped = inner.entries.len();
            inner.entries.clear();
            inner.resident_bytes = 0;
            inner.stats.invalidations += dropped as u64;
        }
        inner
    }

    /// The operand images for `(kernel, seed)`, packing and caching them on
    /// miss. Returns the images and whether the request hit the cache.
    ///
    /// Packing happens under the cache lock, so an operand set is packed at
    /// most once and the counters stay exact (the same trade the kernel
    /// cache makes for compilation).
    pub fn get_or_pack(&self, kernel: &RoutedKernel, seed: u64) -> (Arc<OperandImages>, bool) {
        let key = PackKey {
            seed,
            config: kernel.any_config(),
            layout: PackLayout::for_kernel(kernel),
        };
        let mut inner = self.lock_inner();
        if let Some(pos) = inner.entries.iter().position(|(k, _)| *k == key) {
            // Refresh recency: move to the back.
            let entry = inner.entries.remove(pos);
            let images = entry.1.clone();
            inner.entries.push(entry);
            inner.stats.hits += 1;
            drop(inner);
            if let Some(obs) = self.obs.get() {
                obs.hits.inc();
                obs.update_hit_ratio();
            }
            return (images, true);
        }
        inner.stats.misses += 1;
        let images = Arc::new(kernel.pack_operands(seed));
        inner.resident_bytes += images.bytes();
        let mut evicted = 0u64;
        while inner.entries.len() >= self.capacity {
            let (_, old) = inner.entries.remove(0);
            inner.resident_bytes -= old.bytes();
            evicted += 1;
        }
        inner.stats.evictions += evicted;
        inner.entries.push((key, images.clone()));
        let resident = inner.resident_bytes;
        drop(inner);
        if let Some(obs) = self.obs.get() {
            obs.misses.inc();
            obs.evictions.add(evicted);
            obs.update_hit_ratio();
            obs.resident_bytes.set(resident as f64);
        }
        (images, false)
    }

    /// Drop every cached operand set of `cfg` (all seeds, all layouts).
    /// Returns the number of entries dropped.
    pub fn invalidate_config(&self, cfg: &AnyGemmConfig) -> usize {
        let mut inner = self.lock_inner();
        let before = inner.entries.len();
        let mut freed = 0usize;
        inner.entries.retain(|(k, images)| {
            let stale = k.config == *cfg;
            if stale {
                freed += images.bytes();
            }
            !stale
        });
        let dropped = before - inner.entries.len();
        inner.resident_bytes -= freed;
        inner.stats.invalidations += dropped as u64;
        let resident = inner.resident_bytes;
        drop(inner);
        if let Some(obs) = self.obs.get() {
            obs.invalidations.add(dropped as u64);
            obs.resident_bytes.set(resident as f64);
        }
        dropped
    }

    /// Drop every cached operand set (plan-store replacement).
    pub fn clear(&self) {
        let mut inner = self.lock_inner();
        let dropped = inner.entries.len();
        inner.entries.clear();
        inner.resident_bytes = 0;
        inner.stats.invalidations += dropped as u64;
        drop(inner);
        if let Some(obs) = self.obs.get() {
            obs.invalidations.add(dropped as u64);
            obs.resident_bytes.set(0.0);
        }
    }

    /// Number of cached operand sets.
    pub fn len(&self) -> usize {
        self.lock_inner().entries.len()
    }

    /// `true` if no operand sets are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total heap footprint of the cached images in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.lock_inner().resident_bytes
    }

    /// Snapshot of the monotonic counters.
    pub fn stats(&self) -> PackStats {
        self.lock_inner().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_gemm::{generate_any_backend, GemmConfig, WideningGemmConfig};
    use sme_machine::exec::{RunOptions, Simulator};

    fn fp32_kernel(cfg: &GemmConfig) -> RoutedKernel {
        generate_any_backend(&AnyGemmConfig::Fp32(*cfg), Backend::Sme).unwrap()
    }

    #[test]
    fn repeated_operands_hit_and_replay_bit_identically() {
        let cache = PackedOperandCache::new(8);
        let cfg = GemmConfig::abt(32, 32, 8);
        let kernel = fp32_kernel(&cfg);

        let (packed, hit) = cache.get_or_pack(&kernel, 7);
        assert!(!hit);
        let (again, hit) = cache.get_or_pack(&kernel, 7);
        assert!(hit);
        assert!(Arc::ptr_eq(&packed, &again));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hit_ratio(), 0.5);
        assert_eq!(cache.resident_bytes(), packed.bytes());

        // The hit path's outputs are bit-identical to the repack path's.
        let mut repack_sim = Simulator::m4_performance();
        let bufs = kernel.allocate_buffers(&mut repack_sim, Some(7));
        kernel.run(&mut repack_sim, bufs, &RunOptions::functional_only());
        let repacked = repack_sim.mem.read_f32_slice(bufs.c, cfg.c_len());

        let mut hit_sim = Simulator::m4_performance();
        let bufs = kernel.allocate_buffers_packed(&mut hit_sim, 7, &again);
        kernel.run(&mut hit_sim, bufs, &RunOptions::functional_only());
        let from_cache = hit_sim.mem.read_f32_slice(bufs.c, cfg.c_len());
        assert_eq!(repacked, from_cache);
    }

    #[test]
    fn distinct_seeds_configs_and_layouts_do_not_alias() {
        let cache = PackedOperandCache::new(8);
        let cfg = GemmConfig::abt(16, 16, 8);
        let kernel = fp32_kernel(&cfg);
        let (_, hit) = cache.get_or_pack(&kernel, 1);
        assert!(!hit);
        let (_, hit) = cache.get_or_pack(&kernel, 2);
        assert!(!hit, "different seed is a different operand set");

        // Both FP32 backends share the plain layout: a Neon kernel of the
        // same configuration hits the SME kernel's entry.
        let neon = generate_any_backend(&AnyGemmConfig::Fp32(cfg), Backend::Neon).unwrap();
        let (_, hit) = cache.get_or_pack(&neon, 1);
        assert!(hit, "FP32 images are backend-agnostic");

        // The widening backends pack differently and never alias.
        let wcfg: AnyGemmConfig = WideningGemmConfig::new(32, 32, 8).unwrap().into();
        let sme_w = generate_any_backend(&wcfg, Backend::Sme).unwrap();
        let neon_w = generate_any_backend(&wcfg, Backend::Neon).unwrap();
        let (_, hit) = cache.get_or_pack(&sme_w, 1);
        assert!(!hit);
        let (_, hit) = cache.get_or_pack(&neon_w, 1);
        assert!(!hit, "MMLA and interleaved layouts are distinct entries");
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn lru_bound_and_invalidation_drop_entries() {
        let cache = PackedOperandCache::new(2);
        let cfg_a = GemmConfig::abt(16, 16, 8);
        let cfg_b = GemmConfig::abt(32, 16, 8);
        let kernel_a = fp32_kernel(&cfg_a);
        let kernel_b = fp32_kernel(&cfg_b);

        cache.get_or_pack(&kernel_a, 1);
        cache.get_or_pack(&kernel_a, 2);
        cache.get_or_pack(&kernel_b, 1); // evicts (cfg_a, seed 1)
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let (_, hit) = cache.get_or_pack(&kernel_a, 1);
        assert!(!hit, "the evicted entry repacks");

        // Invalidation drops every seed of the configuration, and the
        // byte accounting drains to the surviving entries.
        let dropped = cache.invalidate_config(&AnyGemmConfig::Fp32(cfg_a));
        assert_eq!(dropped, 1, "seed 2 was evicted by the LRU bound above");
        assert_eq!(cache.stats().invalidations, 1);
        let (images, hit) = cache.get_or_pack(&kernel_b, 1);
        assert!(hit, "other configurations survive invalidation");
        assert_eq!(cache.resident_bytes(), images.bytes());

        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
    }
}
