//! Crash-safe snapshot persistence: atomic writes, checksum trailers, and
//! previous-generation recovery.
//!
//! Every persisted store in the serving stack (plan store, telemetry
//! snapshot, bench baseline, postmortem bundles) funnels through two
//! functions:
//!
//! * [`save_snapshot`] writes `<path>.tmp`, fsyncs it, rotates the current
//!   file to `<path>.bak` (the *previous generation*), and renames the temp
//!   file into place — a crash at any point leaves either the old
//!   generation or the new one, never a torn file. The payload carries a
//!   one-line trailer with its byte length and FNV-1a checksum.
//! * [`read_snapshot`] verifies and strips the trailer, distinguishing a
//!   clean read from *corruption* (truncation, bit-flips, a torn write from
//!   a pre-trailer binary). Trailer-less files are accepted as legacy
//!   documents so existing snapshots and hand-written fixtures keep
//!   loading.
//!
//! [`load_with_recovery`] layers the degradation ladder on top: primary →
//! `.bak` previous generation → nothing, reporting which source actually
//! served via [`SnapshotSource`] so callers (and the chaos harness) can
//! assert that recovery restored *real* state rather than silently starting
//! empty.
//!
//! Both save and read are fault-injection points ([`crate::fault`]):
//! `SaveIo` / `LoadIo` rules fail them outright, and an injector may flip
//! bytes in flight to simulate media corruption.

use crate::fault::{self, FaultKind};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// First token of the checksum trailer line appended to every snapshot.
pub const SNAPSHOT_TRAILER_PREFIX: &str = "#sme-snapshot v1";

/// 64-bit FNV-1a over the payload bytes — tiny, dependency-free, and more
/// than strong enough to catch truncation and bit-flips (this is an
/// integrity check against crashes, not an adversary).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The `.bak` previous-generation path for a snapshot (`plans.json` →
/// `plans.json.bak`).
pub fn backup_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".bak");
    PathBuf::from(os)
}

fn temp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Append the length + checksum trailer to a payload. The payload is
/// newline-terminated first so the trailer always sits on its own line;
/// length and checksum cover the normalized payload including that newline.
pub fn with_trailer(payload: &str) -> String {
    let mut body = String::with_capacity(payload.len() + 64);
    body.push_str(payload);
    if !body.ends_with('\n') {
        body.push('\n');
    }
    let trailer = format!(
        "{SNAPSHOT_TRAILER_PREFIX} len={} fnv={:016x}\n",
        body.len(),
        fnv1a64(body.as_bytes())
    );
    body.push_str(&trailer);
    body
}

/// Errors reported by [`read_snapshot`].
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read (or an injected I/O fault fired).
    Io(io::Error),
    /// The trailer is present but does not match the payload — the file was
    /// truncated or bit-flipped on disk.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Atomically persist `payload` at `path` with a checksum trailer, keeping
/// the previous generation at `<path>.bak`.
///
/// Write order: temp file + fsync, rotate current → `.bak`, rename temp →
/// current, best-effort directory fsync. A crash between any two steps
/// leaves a loadable generation on disk.
pub fn save_snapshot(path: &Path, payload: &str) -> io::Result<()> {
    let site = path.to_string_lossy().into_owned();
    if fault::fire(FaultKind::SaveIo, &site) {
        return Err(io::Error::new(
            io::ErrorKind::Other,
            format!("injected save fault at {site}"),
        ));
    }
    let mut bytes = with_trailer(payload).into_bytes();
    fault::corrupt_bytes(&site, &mut bytes);

    let tmp = temp_path(path);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    if path.exists() {
        // Keep the previous generation for corrupt-primary recovery. A
        // failed rotation is not fatal: the new generation still lands
        // atomically below.
        let _ = fs::rename(path, backup_path(path));
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read a snapshot, verifying and stripping the checksum trailer.
///
/// Files without a trailer are returned whole (legacy documents predating
/// the trailer, and hand-written fixtures). Files *with* a trailer must
/// match it exactly, otherwise [`SnapshotError::Corrupt`] is returned.
pub fn read_snapshot(path: &Path) -> Result<String, SnapshotError> {
    let site = path.to_string_lossy().into_owned();
    if fault::fire(FaultKind::LoadIo, &site) {
        return Err(SnapshotError::Io(io::Error::new(
            io::ErrorKind::Other,
            format!("injected load fault at {site}"),
        )));
    }
    let text = fs::read_to_string(path).map_err(SnapshotError::Io)?;
    strip_verified(&text).map_err(SnapshotError::Corrupt)
}

/// Verify and strip the trailer from a snapshot document already in memory.
/// Returns the payload, or a corruption detail if the trailer mismatches.
pub fn strip_verified(text: &str) -> Result<String, String> {
    let without_final_nl = text.strip_suffix('\n').unwrap_or(text);
    let (body, last_line) = match without_final_nl.rfind('\n') {
        Some(i) => (&without_final_nl[..=i], &without_final_nl[i + 1..]),
        None => ("", without_final_nl),
    };
    if !last_line.starts_with(SNAPSHOT_TRAILER_PREFIX) {
        // Legacy document: no trailer to verify.
        return Ok(text.to_string());
    }
    let mut len: Option<usize> = None;
    let mut fnv: Option<u64> = None;
    for token in last_line.split_whitespace() {
        if let Some(v) = token.strip_prefix("len=") {
            len = v.parse().ok();
        } else if let Some(v) = token.strip_prefix("fnv=") {
            fnv = u64::from_str_radix(v, 16).ok();
        }
    }
    let (expect_len, expect_fnv) = match (len, fnv) {
        (Some(l), Some(f)) => (l, f),
        _ => return Err(format!("unparseable snapshot trailer: {last_line:?}")),
    };
    if body.len() != expect_len {
        return Err(format!(
            "snapshot length mismatch: trailer says {expect_len} bytes, payload has {}",
            body.len()
        ));
    }
    let got_fnv = fnv1a64(body.as_bytes());
    if got_fnv != expect_fnv {
        return Err(format!(
            "snapshot checksum mismatch: trailer says {expect_fnv:016x}, payload hashes to {got_fnv:016x}"
        ));
    }
    Ok(body.to_string())
}

/// Which on-disk generation (if any) a recovered load was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotSource {
    /// The primary file was intact.
    Primary,
    /// The primary was corrupt or unreadable; the `.bak` previous
    /// generation served instead.
    Backup,
    /// Neither generation exists — a fresh start, not a failure.
    Missing,
    /// Both generations exist but neither could be loaded; the caller
    /// starts empty (the end of the degradation ladder).
    Empty,
}

impl SnapshotSource {
    /// Stable snake-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SnapshotSource::Primary => "primary",
            SnapshotSource::Backup => "backup",
            SnapshotSource::Missing => "missing",
            SnapshotSource::Empty => "empty",
        }
    }
}

impl fmt::Display for SnapshotSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of [`load_with_recovery`]: the parsed value when any
/// generation survived, where it came from, and why the primary (and
/// possibly backup) were rejected.
#[derive(Debug)]
pub struct Recovered<T> {
    /// The parsed value; `None` for [`SnapshotSource::Missing`] /
    /// [`SnapshotSource::Empty`].
    pub value: Option<T>,
    /// Which generation served.
    pub source: SnapshotSource,
    /// Human-readable reason the primary (and backup, if tried) failed.
    pub detail: Option<String>,
}

enum Attempt<T> {
    Ok(T),
    NotFound,
    Bad(String),
}

fn attempt<T, E: fmt::Display>(path: &Path, parse: &impl Fn(&str) -> Result<T, E>) -> Attempt<T> {
    match read_snapshot(path) {
        Ok(payload) => match parse(&payload) {
            Ok(value) => Attempt::Ok(value),
            Err(e) => Attempt::Bad(format!("{}: {e}", path.display())),
        },
        Err(SnapshotError::Io(e)) if e.kind() == io::ErrorKind::NotFound => Attempt::NotFound,
        Err(e) => Attempt::Bad(format!("{}: {e}", path.display())),
    }
}

/// Load a snapshot with previous-generation recovery.
///
/// Tries the primary file, then `<path>.bak`; a generation counts as bad if
/// it cannot be read, fails its checksum trailer, or fails `parse`. The
/// caller applies any semantic staleness check (machine fingerprints) on
/// the returned value — staleness is *not* corruption and must not trigger
/// backup recovery.
pub fn load_with_recovery<T, E: fmt::Display>(
    path: &Path,
    parse: impl Fn(&str) -> Result<T, E>,
) -> Recovered<T> {
    match attempt(path, &parse) {
        Attempt::Ok(value) => Recovered {
            value: Some(value),
            source: SnapshotSource::Primary,
            detail: None,
        },
        primary => {
            let primary_missing = matches!(primary, Attempt::NotFound);
            let primary_detail = match primary {
                Attempt::Bad(msg) => Some(msg),
                _ => None,
            };
            match attempt(&backup_path(path), &parse) {
                Attempt::Ok(value) => Recovered {
                    value: Some(value),
                    source: SnapshotSource::Backup,
                    detail: primary_detail.or_else(|| Some(format!("{} missing", path.display()))),
                },
                Attempt::NotFound if primary_missing => Recovered {
                    value: None,
                    source: SnapshotSource::Missing,
                    detail: None,
                },
                backup => {
                    let backup_detail = match backup {
                        Attempt::Bad(msg) => msg,
                        _ => format!("{} missing", backup_path(path).display()),
                    };
                    Recovered {
                        value: None,
                        source: SnapshotSource::Empty,
                        detail: Some(format!(
                            "{}; {}",
                            primary_detail.unwrap_or_else(|| format!("{} missing", path.display())),
                            backup_detail
                        )),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sme-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn trailer_roundtrips_and_detects_damage() {
        let payload = "{\"version\":1}\n";
        let text = with_trailer(payload);
        assert_eq!(strip_verified(&text).expect("intact"), payload);

        // Truncation mid-payload drops the trailer: the document degrades
        // to legacy and the (now truncated) payload is handed to the
        // parser, which is the layer that rejects it.
        let truncated = &text[..6];
        assert!(strip_verified(truncated).is_ok());

        // Truncation mid-trailer leaves a recognizable but unparseable
        // trailer line — rejected, never silently accepted.
        let mid_trailer = &text[..payload.len() + 20];
        assert!(strip_verified(mid_trailer).is_err());

        // A bit-flip inside the payload trips the checksum.
        let mut flipped = text.clone().into_bytes();
        flipped[3] ^= 0x10;
        let flipped = String::from_utf8(flipped).expect("still utf-8");
        let err = strip_verified(&flipped).expect_err("checksum must catch the flip");
        assert!(err.contains("checksum"), "got: {err}");

        // Trailer-with-wrong-length (a torn partial write that kept the
        // trailer line) is also caught.
        let short = format!("{}\n{}", &payload[..4], &text[payload.len()..]);
        let err = strip_verified(&short).expect_err("length must mismatch");
        assert!(err.contains("length"), "got: {err}");
    }

    #[test]
    fn legacy_documents_pass_through_whole() {
        let legacy = "{\"version\":1,\"entries\":[]}";
        assert_eq!(strip_verified(legacy).expect("legacy ok"), legacy);
    }

    #[test]
    fn save_rotates_the_previous_generation() {
        let dir = tmp_dir("rotate");
        let path = dir.join("store.json");
        save_snapshot(&path, "gen-1").expect("first save");
        save_snapshot(&path, "gen-2").expect("second save");
        assert_eq!(read_snapshot(&path).expect("primary"), "gen-2\n");
        assert_eq!(
            read_snapshot(&backup_path(&path)).expect("backup"),
            "gen-1\n"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_prefers_primary_then_backup_then_reports_empty() {
        let dir = tmp_dir("recover");
        let path = dir.join("store.json");
        let parse = |s: &str| -> Result<String, String> {
            if s.contains("gen") {
                Ok(s.trim().to_string())
            } else {
                Err("not a generation".to_string())
            }
        };

        let fresh = load_with_recovery(&path, parse);
        assert_eq!(fresh.source, SnapshotSource::Missing);
        assert!(fresh.value.is_none());

        save_snapshot(&path, "gen-1").expect("save");
        save_snapshot(&path, "gen-2").expect("save");
        let ok = load_with_recovery(&path, parse);
        assert_eq!(ok.source, SnapshotSource::Primary);
        assert_eq!(ok.value.as_deref(), Some("gen-2"));

        // Corrupt the primary on disk: recovery serves the previous
        // generation, not empty.
        let mut bytes = fs::read(&path).expect("read");
        bytes[1] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        let recovered = load_with_recovery(&path, parse);
        assert_eq!(recovered.source, SnapshotSource::Backup);
        assert_eq!(recovered.value.as_deref(), Some("gen-1"));
        assert!(recovered.detail.is_some());

        // Corrupt the backup too: the ladder bottoms out at empty, with
        // both failures explained.
        let mut bak = fs::read(backup_path(&path)).expect("read bak");
        let pos = bak.len() / 2;
        bak[pos] ^= 0x40;
        fs::write(backup_path(&path), &bak).expect("rewrite bak");
        let empty = load_with_recovery(&path, parse);
        assert_eq!(empty.source, SnapshotSource::Empty);
        assert!(empty.value.is_none());
        assert!(empty.detail.is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_rotation_is_recoverable() {
        // Simulate a crash between "rotate current → .bak" and "rename tmp
        // → current": only the .bak generation exists.
        let dir = tmp_dir("torn");
        let path = dir.join("store.json");
        save_snapshot(&path, "gen-1").expect("save");
        fs::rename(&path, backup_path(&path)).expect("simulate torn rotation");
        let parse = |s: &str| -> Result<String, String> { Ok(s.trim().to_string()) };
        let recovered = load_with_recovery(&path, parse);
        assert_eq!(recovered.source, SnapshotSource::Backup);
        assert_eq!(recovered.value.as_deref(), Some("gen-1"));
        let _ = fs::remove_dir_all(&dir);
    }
}
