//! Deterministic fault injection for the serving stack.
//!
//! Production code asks two questions at well-known *sites* — "should this
//! operation fail now?" ([`fire`]) and "should these bytes be corrupted?"
//! ([`corrupt_bytes`]) — and both answer `false` unless a [`FaultInjector`]
//! has been installed process-wide with [`install_injector`]. The fast path
//! is a single relaxed atomic load, so production dispatch pays nothing for
//! the hooks.
//!
//! The stock injector is [`FaultPlan`]: a *seeded, deterministic* schedule
//! that counts occurrences per `(kind, site)` pair and fires each rule on an
//! exact occurrence number. Running the same binary with the same seed
//! injects the same faults at the same points — which is what lets
//! `serving --chaos` assert bit-correct recovery in CI instead of hoping a
//! randomized fuzzer happened to hit something.
//!
//! Sites are plain strings chosen by the call sites (snapshot file paths,
//! `service.group:<backend>:<config>`, `daemon.tick`), so a schedule can
//! target, say, "the second save of `telemetry.json`" or "the third dispatch
//! of an SME-routed group" without the production code knowing anything
//! about the schedule.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The kinds of fault the serving stack knows how to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A snapshot save fails with an I/O error before anything is written.
    SaveIo,
    /// A snapshot load fails with an I/O error before anything is read.
    LoadIo,
    /// A persisted snapshot is corrupted on disk (bit-flip or truncation).
    SnapshotCorrupt,
    /// Compiling a kernel for a dispatch group fails.
    CompileFail,
    /// A dispatch group panics mid-execution.
    GroupPanic,
    /// A pretune-daemon tick fails outright.
    DaemonTick,
}

impl FaultKind {
    /// All kinds, in declaration order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::SaveIo,
        FaultKind::LoadIo,
        FaultKind::SnapshotCorrupt,
        FaultKind::CompileFail,
        FaultKind::GroupPanic,
        FaultKind::DaemonTick,
    ];

    /// Stable snake-case name (used in `BENCH_chaos.json` and metric names).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SaveIo => "save_io",
            FaultKind::LoadIo => "load_io",
            FaultKind::SnapshotCorrupt => "snapshot_corrupt",
            FaultKind::CompileFail => "compile_fail",
            FaultKind::GroupPanic => "group_panic",
            FaultKind::DaemonTick => "daemon_tick",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A pluggable fault source. Implementations must be deterministic if the
/// harness wants reproducible chaos runs, but the trait itself does not
/// care — tests may hard-wire answers.
pub trait FaultInjector: Send + Sync + fmt::Debug {
    /// Should the operation identified by `(kind, site)` fail now?
    ///
    /// Called once per *attempt*; implementations typically count
    /// occurrences per `(kind, site)` and fire on exact counts.
    fn should_fire(&self, kind: FaultKind, site: &str) -> bool;

    /// Optionally corrupt `bytes` about to be written at `site`; return
    /// `true` if anything was changed. The default never corrupts.
    fn corrupt(&self, site: &str, bytes: &mut [u8]) -> bool {
        let _ = (site, bytes);
        false
    }
}

/// Fast-path arm flag: `false` means no injector has ever been installed
/// (or it has been cleared) and [`fire`] returns immediately.
static ARMED: AtomicBool = AtomicBool::new(false);

fn injector_slot() -> &'static Mutex<Option<Arc<dyn FaultInjector>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn FaultInjector>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Install a process-wide fault injector. Replaces any previous injector.
pub fn install_injector(injector: Arc<dyn FaultInjector>) {
    let mut slot = injector_slot().lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(injector);
    ARMED.store(true, Ordering::Release);
}

/// Remove the process-wide fault injector; subsequent [`fire`] calls are
/// free again.
pub fn clear_injector() {
    let mut slot = injector_slot().lock().unwrap_or_else(|e| e.into_inner());
    *slot = None;
    ARMED.store(false, Ordering::Release);
}

/// Is a fault injector currently installed?
pub fn injection_armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Ask the installed injector (if any) whether `(kind, site)` should fail
/// now. Production fast path: one relaxed atomic load when disarmed.
pub fn fire(kind: FaultKind, site: &str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let slot = injector_slot().lock().unwrap_or_else(|e| e.into_inner());
    match slot.as_ref() {
        Some(injector) => injector.should_fire(kind, site),
        None => false,
    }
}

/// Ask the installed injector (if any) to corrupt bytes about to be written
/// at `site`. Returns `true` if the buffer was changed.
pub fn corrupt_bytes(site: &str, bytes: &mut [u8]) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let slot = injector_slot().lock().unwrap_or_else(|e| e.into_inner());
    match slot.as_ref() {
        Some(injector) => injector.corrupt(site, bytes),
        None => false,
    }
}

/// How a [`FaultRule`] selects sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SitePattern {
    /// Matches every site.
    Any,
    /// Matches sites ending with the given suffix (e.g. `"telemetry.json"`,
    /// which deliberately does *not* match the `…telemetry.json.bak`
    /// recovery generation).
    EndsWith(String),
    /// Matches sites containing the given substring (e.g. `":Sme:"` for
    /// SME-routed dispatch groups).
    Contains(String),
}

impl SitePattern {
    fn matches(&self, site: &str) -> bool {
        match self {
            SitePattern::Any => true,
            SitePattern::EndsWith(suffix) => site.ends_with(suffix.as_str()),
            SitePattern::Contains(needle) => site.contains(needle.as_str()),
        }
    }
}

/// One deterministic rule: fire `kind` at matching sites on exactly the
/// `occurrence`-th attempt (1-based, counted per `(kind, site)` pair).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Which fault to inject.
    pub kind: FaultKind,
    /// Which sites the rule applies to.
    pub pattern: SitePattern,
    /// The 1-based occurrence count at which the rule fires, per site.
    pub occurrence: u64,
}

/// One fault that actually fired (or was recorded externally by the chaos
/// harness, e.g. an on-disk truncation it performed itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The kind of fault.
    pub kind: FaultKind,
    /// The site it fired at.
    pub site: String,
    /// The per-`(kind, site)` occurrence count when it fired.
    pub occurrence: u64,
}

#[derive(Debug, Default)]
struct PlanState {
    counts: HashMap<(FaultKind, String), u64>,
    events: Vec<FaultEvent>,
}

/// A seeded, deterministic fault schedule.
///
/// The seed perturbs the occurrence numbers of the built-in chaos rules
/// (see [`FaultPlan::chaos`]) so different seeds exercise different
/// interleavings, while any *fixed* seed replays the exact same faults.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// A plan with an explicit rule list (for tests and custom harnesses).
    pub fn with_rules(seed: u64, rules: Vec<FaultRule>) -> Self {
        FaultPlan {
            seed,
            rules,
            state: Mutex::new(PlanState::default()),
        }
    }

    /// The stock chaos schedule driven by `serving --chaos`:
    ///
    /// * the telemetry snapshot save fails once mid-run (`SaveIo`);
    /// * the telemetry snapshot *primary* read fails at the restart restore
    ///   (`LoadIo`), forcing recovery from the `.bak` generation;
    /// * one daemon tick mid-run fails outright (`DaemonTick`);
    /// * every SME-routed dispatch group has one forced compile failure and
    ///   one forced panic on later repeats (`CompileFail`, `GroupPanic`),
    ///   exercising the Neon fallback ladder.
    ///
    /// `SnapshotCorrupt` events are recorded by the harness itself via
    /// [`FaultPlan::record_external`] when it corrupts files on disk.
    pub fn chaos(seed: u64) -> Self {
        let rules = vec![
            FaultRule {
                kind: FaultKind::SaveIo,
                pattern: SitePattern::EndsWith("telemetry.json".to_string()),
                occurrence: 2 + seed % 2,
            },
            FaultRule {
                kind: FaultKind::LoadIo,
                pattern: SitePattern::EndsWith("telemetry.json".to_string()),
                occurrence: 1,
            },
            FaultRule {
                kind: FaultKind::DaemonTick,
                pattern: SitePattern::Any,
                occurrence: 4 + seed % 3,
            },
            FaultRule {
                kind: FaultKind::CompileFail,
                pattern: SitePattern::Contains(":Sme:".to_string()),
                occurrence: 2 + seed % 2,
            },
            FaultRule {
                kind: FaultKind::GroupPanic,
                pattern: SitePattern::Contains(":Sme:".to_string()),
                occurrence: 3 + seed % 2,
            },
        ];
        FaultPlan::with_rules(seed, rules)
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rules this plan fires on.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Every fault that has fired so far (including externally recorded
    /// ones), in firing order.
    pub fn events(&self) -> Vec<FaultEvent> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.events.clone()
    }

    /// Record a fault the harness performed *outside* the hook points (for
    /// example truncating a snapshot file on disk), so it still shows up in
    /// [`FaultPlan::events`] and the chaos report.
    pub fn record_external(&self, kind: FaultKind, site: &str) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let count = state
            .counts
            .entry((kind, site.to_string()))
            .and_modify(|c| *c += 1)
            .or_insert(1);
        let occurrence = *count;
        state.events.push(FaultEvent {
            kind,
            site: site.to_string(),
            occurrence,
        });
    }
}

impl FaultInjector for FaultPlan {
    fn should_fire(&self, kind: FaultKind, site: &str) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let count = state
            .counts
            .entry((kind, site.to_string()))
            .and_modify(|c| *c += 1)
            .or_insert(1);
        let occurrence = *count;
        let fired = self
            .rules
            .iter()
            .any(|r| r.kind == kind && r.occurrence == occurrence && r.pattern.matches(site));
        if fired {
            state.events.push(FaultEvent {
                kind,
                site: site.to_string(),
                occurrence,
            });
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_fire_on_exact_occurrences_per_site() {
        let plan = FaultPlan::with_rules(
            0,
            vec![FaultRule {
                kind: FaultKind::SaveIo,
                pattern: SitePattern::EndsWith("telemetry.json".to_string()),
                occurrence: 2,
            }],
        );
        assert!(!plan.should_fire(FaultKind::SaveIo, "/tmp/x/telemetry.json"));
        assert!(plan.should_fire(FaultKind::SaveIo, "/tmp/x/telemetry.json"));
        assert!(!plan.should_fire(FaultKind::SaveIo, "/tmp/x/telemetry.json"));
        // Other sites and the `.bak` generation count independently.
        assert!(!plan.should_fire(FaultKind::SaveIo, "/tmp/x/plans.json"));
        assert!(!plan.should_fire(FaultKind::SaveIo, "/tmp/x/telemetry.json.bak"));
        assert!(!plan.should_fire(FaultKind::SaveIo, "/tmp/x/telemetry.json.bak"));
        assert_eq!(plan.events().len(), 1);
        assert_eq!(plan.events()[0].occurrence, 2);
    }

    #[test]
    fn chaos_schedules_are_deterministic_per_seed() {
        let a = FaultPlan::chaos(7);
        let b = FaultPlan::chaos(7);
        assert_eq!(a.rules(), b.rules());
        for _ in 0..5 {
            assert_eq!(
                a.should_fire(FaultKind::DaemonTick, "daemon.tick"),
                b.should_fire(FaultKind::DaemonTick, "daemon.tick"),
            );
        }
        assert_eq!(a.events(), b.events());
        assert!(!a.events().is_empty(), "some tick fault fired in 5 ticks");
    }

    #[test]
    fn external_records_show_up_in_events() {
        let plan = FaultPlan::chaos(0);
        plan.record_external(FaultKind::SnapshotCorrupt, "/tmp/x/plans.json");
        let events = plan.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, FaultKind::SnapshotCorrupt);
    }

    #[test]
    fn disarmed_global_hooks_never_fire() {
        clear_injector();
        assert!(!fire(FaultKind::GroupPanic, "anywhere"));
        let mut bytes = vec![1, 2, 3];
        assert!(!corrupt_bytes("anywhere", &mut bytes));
        assert_eq!(bytes, vec![1, 2, 3]);
    }
}
