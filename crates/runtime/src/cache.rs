//! Thread-safe, sharded kernel cache with a bounded LRU policy.
//!
//! The paper's kernels are generated once and executed many times per time
//! step; the reproduction previously regenerated on every call. The
//! [`KernelCache`] closes that gap: it hands out `Arc<RoutedKernel>`
//! clones on hit and compiles on miss, consulting the [`PlanStore`] first so
//! that autotuned winners — not the default heterogeneous plan — become the
//! dispatched kernels ([`sme_gemm::generate_routed`] is the tuned path,
//! [`sme_gemm::generate_backend`] the fallback).
//!
//! Entries are keyed by **configuration plus backend**, where the
//! configuration is the unified [`AnyGemmConfig`] key — FP32 and BF16
//! widening kernels of the same shape are distinct entries, and the same
//! configuration can be cached once as an SME kernel and once as a Neon
//! kernel, so a router flipping a shape between engines (or serving a
//! mixed-datatype batch) never thrashes the cache.
//!
//! Entries are spread over a fixed number of shards by the key's hash, so
//! concurrent requests for different kernels rarely contend on the same
//! lock. Each shard applies its own LRU bound; compilation happens under
//! the shard lock, which serialises misses *per shard* but guarantees a
//! kernel is compiled at most once and keeps the hit/miss counters exact
//! (the property the cache's tests and the runtime integration test rely
//! on).

use crate::pack::PackedOperandCache;
use crate::store::{tune_key_any, PlanStore, TunedRecord};
use serde::json::Value;
use sme_gemm::{
    generate_any_backend, generate_any_routed, AnyGemmConfig, Backend, GemmConfig, GemmError,
    RoutedKernel,
};
use sme_obs::{Counter, Gauge, Histogram, ObsHub, TraceCtx};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Instant;

/// Lock a shard, recovering from poison instead of panicking: a panic while
/// the guard was held may have left the entry list mid-edit, so a recovered
/// shard's entries are dropped (they are only a cache — the next request
/// recompiles) while its counters are kept. The recovery is counted in
/// `sme_lock_poisoned_total` (see [`crate::poison`]).
fn lock_shard(shard: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    let (mut guard, recovered) = crate::poison::lock_recovering(shard, "kernel-cache shard");
    if recovered {
        guard.entries.clear();
    }
    guard
}

/// Number of independently locked shards.
const SHARDS: usize = 8;

/// Monotonic counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to compile a kernel.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Misses that were compiled from a tuned plan-store record (the
    /// remainder used the default plan).
    pub tuned_compiles: u64,
}

impl CacheStats {
    /// Fraction of requests served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulate another snapshot's counters (used to aggregate the
    /// per-shard statistics into one cache-wide view).
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.tuned_compiles += other.tuned_compiles;
    }
}

/// Cache key: one configuration (of either datatype) compiled for one
/// backend.
type CacheKey = (AnyGemmConfig, Backend);

/// One shard: a small LRU list with the most recently used entry last.
///
/// Shard capacities are single digits to low tens, so a vector scan beats a
/// linked-list LRU both in code and in cache behaviour.
#[derive(Debug, Default)]
struct Shard {
    entries: Vec<(CacheKey, Arc<RoutedKernel>)>,
    /// This shard's share of the cache counters, updated under the shard
    /// lock so they stay exact with respect to the entries.
    stats: CacheStats,
}

impl Shard {
    fn get(&mut self, key: &CacheKey) -> Option<Arc<RoutedKernel>> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        // Refresh recency: move to the back.
        let entry = self.entries.remove(pos);
        let kernel = entry.1.clone();
        self.entries.push(entry);
        Some(kernel)
    }

    /// Insert a fresh entry, evicting the least recently used if the shard
    /// is full. Returns the number of evicted entries (0 or 1).
    fn insert(&mut self, key: CacheKey, kernel: Arc<RoutedKernel>, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.entries.len() >= capacity && !self.entries.is_empty() {
            self.entries.remove(0);
            evicted += 1;
        }
        self.entries.push((key, kernel));
        evicted
    }
}

/// A sharded, thread-safe cache of compiled GEMM kernels keyed by
/// [`GemmConfig`].
#[derive(Debug)]
pub struct KernelCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    store: RwLock<PlanStore>,
    /// Packed operand images keyed by operand identity × layout × datatype
    /// (see [`crate::pack`]); invalidated alongside the kernels.
    packs: PackedOperandCache,
    obs: OnceLock<ObsHandles>,
}

/// Pre-resolved observability handles so the fetch hot path pays atomic
/// increments, not registry lookups.
#[derive(Debug)]
struct ObsHandles {
    hub: Arc<ObsHub>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    tuned_compiles: Counter,
    hit_ratio: Gauge,
    compile_seconds: Histogram,
}

impl ObsHandles {
    fn update_hit_ratio(&self) {
        let hits = self.hits.get() as f64;
        let total = hits + self.misses.get() as f64;
        if total > 0.0 {
            self.hit_ratio.set(hits / total);
        }
    }
}

/// Short human-readable label for a configuration (trace span argument).
fn describe_any(cfg: &AnyGemmConfig) -> String {
    format!("{} {}x{}x{}", cfg.dtype(), cfg.m(), cfg.n(), cfg.k())
}

impl KernelCache {
    /// Create a cache bounded to roughly `capacity` kernels with an empty
    /// plan store.
    ///
    /// The bound is applied per shard (`capacity` is divided over the
    /// shards, rounded up), so the true ceiling is at most
    /// `capacity + SHARDS - 1` kernels.
    pub fn new(capacity: usize) -> Self {
        KernelCache::with_store(capacity, PlanStore::new())
    }

    /// Create a cache that consults `store` for tuned plans before falling
    /// back to the default plan.
    pub fn with_store(capacity: usize, store: PlanStore) -> Self {
        let shard_capacity = capacity.div_ceil(SHARDS).max(1);
        KernelCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            store: RwLock::new(store),
            // Operand images are far smaller than compiled kernels are
            // costly, so give repeated-weights traffic headroom: several
            // operand sets per cacheable kernel.
            packs: PackedOperandCache::new(capacity.max(1) * 4),
            obs: OnceLock::new(),
        }
    }

    /// The packed-operand cache riding along with the kernel cache (hit
    /// counters, explicit invalidation).
    pub fn packs(&self) -> &PackedOperandCache {
        &self.packs
    }

    /// Attach an observability hub: cache hit/miss/eviction counters, the
    /// hit-ratio gauge, compile-time histogram and per-compile spans are
    /// reported to it from then on. Only the first attach wins.
    pub fn attach_obs(&self, hub: Arc<ObsHub>) {
        self.packs.attach_obs(&hub);
        crate::poison::attach_counter(hub.metrics.counter("sme_lock_poisoned_total"));
        let _ = self.obs.set(ObsHandles {
            hits: hub.metrics.counter("sme_cache_hits_total"),
            misses: hub.metrics.counter("sme_cache_misses_total"),
            evictions: hub.metrics.counter("sme_cache_evictions_total"),
            tuned_compiles: hub.metrics.counter("sme_cache_tuned_compiles_total"),
            hit_ratio: hub.metrics.gauge("sme_cache_hit_ratio"),
            compile_seconds: hub.metrics.histogram("sme_cache_compile_seconds"),
            hub,
        });
    }

    /// The attached observability hub, if any (used by the service layer to
    /// report into the same hub).
    pub fn obs(&self) -> Option<&Arc<ObsHub>> {
        self.obs.get().map(|o| &o.hub)
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// The backend the cache would pick for a configuration of either
    /// datatype when the caller expresses no preference: the stored tuned
    /// winner's backend, or the datatype's default engine — SME (the
    /// paper's engine) for both datatypes, its generators being total over
    /// their envelopes (widening edge tiles are predicated since PR 5).
    ///
    /// A record whose backend cannot actually compile the shape (possible
    /// only for stores assembled in memory — load-time validation rejects
    /// such documents) is ignored rather than followed, so a bad record
    /// can degrade dispatch but never make a valid configuration
    /// undispatchable.
    pub fn preferred_backend_any(&self, cfg: &AnyGemmConfig) -> Backend {
        let fallback = sme_gemm::default_any_candidate(cfg).backend;
        let backend = crate::poison::read(&self.store, "plan store")
            .lookup_any(cfg)
            .map(|record| record.candidate.backend)
            .unwrap_or(fallback);
        let compilable = match (cfg, backend) {
            (AnyGemmConfig::Fp32(c), Backend::Neon) => sme_gemm::neon_supports(c).is_ok(),
            (AnyGemmConfig::Fp32(_), Backend::Sme) => true,
            (AnyGemmConfig::WideningBf16(c), Backend::Sme) => {
                sme_gemm::sme_widening_supports(c).is_ok()
            }
            (AnyGemmConfig::WideningBf16(_), Backend::Neon) => true,
        };
        if compilable {
            backend
        } else {
            fallback
        }
    }

    /// FP32 convenience for [`KernelCache::preferred_backend_any`].
    pub fn preferred_backend(&self, cfg: &GemmConfig) -> Backend {
        self.preferred_backend_any(&AnyGemmConfig::Fp32(*cfg))
    }

    /// Fetch the kernel for an FP32 `cfg` on the cache's preferred backend,
    /// compiling it on miss.
    pub fn get_or_compile(&self, cfg: &GemmConfig) -> Result<Arc<RoutedKernel>, GemmError> {
        self.get_or_compile_any(&AnyGemmConfig::Fp32(*cfg))
    }

    /// Fetch the kernel for a configuration of either datatype on the
    /// cache's preferred backend (see
    /// [`KernelCache::preferred_backend_any`]), compiling it on miss.
    pub fn get_or_compile_any(&self, cfg: &AnyGemmConfig) -> Result<Arc<RoutedKernel>, GemmError> {
        self.get_or_compile_backend_any(cfg, self.preferred_backend_any(cfg))
    }

    /// Fetch the kernel for an FP32 `cfg` compiled for `backend`, compiling
    /// it on miss (see [`KernelCache::fetch_any`]).
    pub fn get_or_compile_backend(
        &self,
        cfg: &GemmConfig,
        backend: Backend,
    ) -> Result<Arc<RoutedKernel>, GemmError> {
        self.fetch(cfg, backend).map(|(kernel, _)| kernel)
    }

    /// Fetch the kernel for a configuration of either datatype compiled for
    /// `backend`, compiling it on miss (see [`KernelCache::fetch_any`]).
    pub fn get_or_compile_backend_any(
        &self,
        cfg: &AnyGemmConfig,
        backend: Backend,
    ) -> Result<Arc<RoutedKernel>, GemmError> {
        self.fetch_any(cfg, backend).map(|(kernel, _)| kernel)
    }

    /// FP32 convenience for [`KernelCache::fetch_any`].
    pub fn fetch(
        &self,
        cfg: &GemmConfig,
        backend: Backend,
    ) -> Result<(Arc<RoutedKernel>, bool), GemmError> {
        self.fetch_any(&AnyGemmConfig::Fp32(*cfg), backend)
    }

    /// Fetch the kernel for a configuration of either datatype compiled for
    /// `backend` and report whether the request hit the cache (the flag
    /// feeds the router's per-shape telemetry).
    ///
    /// On miss the plan store is consulted with the normalized tuning key;
    /// a stored winner **for the requested backend** is compiled through
    /// the tuned dispatch path ([`sme_gemm::generate_any_routed`]),
    /// anything else through the backend's default generator
    /// ([`sme_gemm::generate_any_backend`]). A tuned record that fails to
    /// compile falls back to the backend default (visible as a miss without
    /// a matching `tuned_compiles` increment) — only the configuration's
    /// own invalidity is an error.
    pub fn fetch_any(
        &self,
        cfg: &AnyGemmConfig,
        backend: Backend,
    ) -> Result<(Arc<RoutedKernel>, bool), GemmError> {
        self.fetch_any_traced(cfg, backend, None)
    }

    /// [`KernelCache::fetch_any`] with an explicit causal parent: a
    /// compile's `cache.compile` span is recorded as a child of `parent`
    /// (or as its own trace root when `parent` is `None`), so a miss shows
    /// up nested under the dispatch that caused it.
    pub fn fetch_any_traced(
        &self,
        cfg: &AnyGemmConfig,
        backend: Backend,
        parent: Option<TraceCtx>,
    ) -> Result<(Arc<RoutedKernel>, bool), GemmError> {
        let key = (*cfg, backend);
        let mut shard = lock_shard(self.shard_for(&key));
        if let Some(kernel) = shard.get(&key) {
            shard.stats.hits += 1;
            drop(shard);
            if let Some(obs) = self.obs.get() {
                obs.hits.inc();
                obs.update_hit_ratio();
            }
            return Ok((kernel, true));
        }
        shard.stats.misses += 1;
        if let Some(obs) = self.obs.get() {
            obs.misses.inc();
        }
        let compile_started = Instant::now();
        let tuned = crate::poison::read(&self.store, "plan store")
            .lookup_any(cfg)
            .copied()
            .filter(|record| record.candidate.backend == backend);
        let mut tuned_compile = false;
        let kernel = match tuned {
            // A bad record (e.g. hand-edited into a store built in memory,
            // where no load-time validation runs) must not make a valid
            // configuration undispatchable: fall back to the default
            // kernel of the requested backend and leave `tuned_compiles`
            // untouched so the degradation is visible in the counters.
            Some(record) => match generate_any_routed(cfg, &record.candidate) {
                Ok(kernel) => {
                    shard.stats.tuned_compiles += 1;
                    tuned_compile = true;
                    kernel
                }
                Err(_) => generate_any_backend(cfg, backend)?,
            },
            None => generate_any_backend(cfg, backend)?,
        };
        let kernel = Arc::new(kernel);
        let evicted = shard.insert(key, kernel.clone(), self.shard_capacity);
        shard.stats.evictions += evicted;
        drop(shard);
        if let Some(obs) = self.obs.get() {
            obs.evictions.add(evicted);
            if tuned_compile {
                obs.tuned_compiles.inc();
            }
            obs.update_hit_ratio();
            obs.compile_seconds
                .record(compile_started.elapsed().as_secs_f64());
            let ctx = match parent {
                Some(parent) => obs.hub.trace.child_ctx(parent),
                None => obs.hub.trace.root_ctx(),
            };
            obs.hub.trace.record_ctx(
                "cache.compile",
                "cache",
                compile_started,
                ctx,
                vec![
                    ("config".to_string(), Value::String(describe_any(cfg))),
                    (
                        "backend".to_string(),
                        Value::String(backend.name().to_string()),
                    ),
                    ("tuned".to_string(), Value::Bool(tuned_compile)),
                    ("evicted".to_string(), Value::Number(evicted as f64)),
                ],
            );
        }
        Ok((kernel, false))
    }

    /// Look up an FP32 `cfg` on its preferred backend without compiling or
    /// touching the counters (recency is still refreshed on hit).
    pub fn peek(&self, cfg: &GemmConfig) -> Option<Arc<RoutedKernel>> {
        let cfg = AnyGemmConfig::Fp32(*cfg);
        self.peek_backend_any(&cfg, self.preferred_backend_any(&cfg))
    }

    /// FP32 convenience for [`KernelCache::peek_backend_any`].
    pub fn peek_backend(&self, cfg: &GemmConfig, backend: Backend) -> Option<Arc<RoutedKernel>> {
        self.peek_backend_any(&AnyGemmConfig::Fp32(*cfg), backend)
    }

    /// Look up a configuration of either datatype compiled for `backend`
    /// without compiling or touching the counters.
    pub fn peek_backend_any(
        &self,
        cfg: &AnyGemmConfig,
        backend: Backend,
    ) -> Option<Arc<RoutedKernel>> {
        let key = (*cfg, backend);
        lock_shard(self.shard_for(&key)).get(&key)
    }

    /// Drop every cached kernel for an FP32 `cfg` (all backends).
    pub fn invalidate(&self, cfg: &GemmConfig) -> bool {
        self.invalidate_any(&AnyGemmConfig::Fp32(*cfg))
    }

    /// Drop every cached kernel for a configuration of either datatype
    /// (all backends), along with the configuration's packed operand
    /// images — a caller invalidating a shape expects *nothing* derived
    /// from it to be served stale.
    pub fn invalidate_any(&self, cfg: &AnyGemmConfig) -> bool {
        let mut dropped = false;
        for backend in Backend::all() {
            let key = (*cfg, backend);
            let mut shard = lock_shard(self.shard_for(&key));
            let before = shard.entries.len();
            shard.entries.retain(|(k, _)| k != &key);
            dropped |= shard.entries.len() != before;
        }
        self.packs.invalidate_config(cfg);
        dropped
    }

    /// Install a tuned winner for an FP32 `cfg` (see
    /// [`KernelCache::install_tuned_any`]).
    pub fn install_tuned(&self, cfg: &GemmConfig, record: TunedRecord) {
        self.install_tuned_any(&AnyGemmConfig::Fp32(*cfg), record)
    }

    /// Install a tuned winner for a configuration of either datatype and
    /// invalidate every cached kernel (on any backend) that shares its
    /// tuning key, so the next request compiles the tuned variant.
    pub fn install_tuned_any(&self, cfg: &AnyGemmConfig, record: TunedRecord) {
        let key = tune_key_any(cfg);
        crate::poison::write(&self.store, "plan store").insert_any(cfg, record);
        for shard in &self.shards {
            lock_shard(shard)
                .entries
                .retain(|((c, _), _)| tune_key_any(c) != key);
        }
    }

    /// The tuned record that would be used for an FP32 `cfg`, if one is
    /// stored.
    pub fn lookup_tuned(&self, cfg: &GemmConfig) -> Option<TunedRecord> {
        self.lookup_tuned_any(&AnyGemmConfig::Fp32(*cfg))
    }

    /// The tuned record that would be used for a configuration of either
    /// datatype, if one is stored.
    pub fn lookup_tuned_any(&self, cfg: &AnyGemmConfig) -> Option<TunedRecord> {
        crate::poison::read(&self.store, "plan store")
            .lookup_any(cfg)
            .copied()
    }

    /// Replace the whole plan store (e.g. after [`PlanStore::load`]) and
    /// drop every cached kernel and packed operand set, since any of them
    /// may now be stale.
    pub fn replace_store(&self, store: PlanStore) {
        *crate::poison::write(&self.store, "plan store") = store;
        for shard in &self.shards {
            lock_shard(shard).entries.clear();
        }
        self.packs.clear();
    }

    /// Snapshot of the plan store (for persistence).
    pub fn export_store(&self) -> PlanStore {
        crate::poison::read(&self.store, "plan store").clone()
    }

    /// Number of cached kernels.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_shard(s).entries.len())
            .sum()
    }

    /// `true` if no kernels are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the monotonic counters, aggregated over the per-shard
    /// [`CacheStats`] (see [`KernelCache::shard_stats`]).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shard_stats() {
            total.accumulate(&shard);
        }
        total
    }

    /// Per-shard counter snapshots, in shard order. Useful for spotting a
    /// pathologically hot or thrashing shard; the cache-wide view is the
    /// aggregation in [`KernelCache::stats`].
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(|s| lock_shard(s).stats).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::tune_key;
    use sme_gemm::{KernelSchedule, PlanCandidate, PlanKind, ZaTransferStrategy};

    #[test]
    fn second_request_hits_without_compiling() {
        let cache = KernelCache::new(16);
        let cfg = GemmConfig::abt(32, 32, 8);
        let first = cache.get_or_compile(&cfg).unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                ..Default::default()
            }
        );
        let second = cache.get_or_compile(&cfg).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same compiled kernel object");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn lru_bound_evicts_the_least_recently_used() {
        // Capacity 8 over 8 shards = 1 kernel per shard: two configurations
        // that land in the same shard must displace each other.
        let cache = KernelCache::new(8);
        let shard_of = |cfg: &GemmConfig| {
            let mut hasher = DefaultHasher::new();
            (AnyGemmConfig::Fp32(*cfg), Backend::Sme).hash(&mut hasher);
            (hasher.finish() as usize) % SHARDS
        };
        // Find two configs sharing a shard.
        let mut cfgs = vec![GemmConfig::abt(16, 16, 4)];
        let mut k = 4;
        while cfgs.len() < 2 {
            k += 4;
            let candidate = GemmConfig::abt(16, 16, k);
            if shard_of(&candidate) == shard_of(&cfgs[0]) {
                cfgs.push(candidate);
            }
        }
        cache.get_or_compile(&cfgs[0]).unwrap();
        cache.get_or_compile(&cfgs[1]).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.peek(&cfgs[0]).is_none(), "LRU entry evicted");
        assert!(cache.peek(&cfgs[1]).is_some());
        // Re-requesting the evicted config is a miss again.
        cache.get_or_compile(&cfgs[0]).unwrap();
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn recency_is_refreshed_on_hit() {
        // One shard of capacity 2 (capacity 16 / 8 shards): fill it with two
        // same-shard configs, touch the older one, insert a third — the
        // middle one must be the victim.
        let cache = KernelCache::new(16);
        let shard_of = |cfg: &GemmConfig| {
            let mut hasher = DefaultHasher::new();
            (AnyGemmConfig::Fp32(*cfg), Backend::Sme).hash(&mut hasher);
            (hasher.finish() as usize) % SHARDS
        };
        let mut same_shard = Vec::new();
        let mut k = 0;
        while same_shard.len() < 3 {
            k += 4;
            let cfg = GemmConfig::abt(16, 16, k);
            if same_shard.is_empty() || shard_of(&cfg) == shard_of(&same_shard[0]) {
                same_shard.push(cfg);
            }
        }
        cache.get_or_compile(&same_shard[0]).unwrap();
        cache.get_or_compile(&same_shard[1]).unwrap();
        cache.get_or_compile(&same_shard[0]).unwrap(); // refresh [0]
        cache.get_or_compile(&same_shard[2]).unwrap(); // evicts [1]
        assert!(cache.peek(&same_shard[0]).is_some());
        assert!(cache.peek(&same_shard[1]).is_none());
        assert!(cache.peek(&same_shard[2]).is_some());
    }

    #[test]
    fn tuned_records_drive_compilation() {
        let cache = KernelCache::new(16);
        let cfg = GemmConfig::abt(40, 40, 16);
        // Without a record: default compile.
        let plain = cache.get_or_compile(&cfg).unwrap();
        assert_eq!(plain.fp32_config().unwrap().c_transfer, cfg.c_transfer);
        assert_eq!(cache.stats().tuned_compiles, 0);

        // Installing a winner invalidates and redirects the next compile.
        let record = TunedRecord {
            candidate: PlanCandidate {
                backend: Backend::Sme,
                kind: PlanKind::Heterogeneous,
                c_transfer: ZaTransferStrategy::Direct,
                k_unroll: 4,
                schedule: KernelSchedule::Serial,
            },
            tuned_cycles: 10.0,
            default_cycles: 20.0,
        };
        cache.install_tuned(&cfg, record);
        assert!(cache.peek(&cfg).is_none(), "stale kernel invalidated");
        let tuned = cache.get_or_compile(&cfg).unwrap();
        assert_eq!(
            tuned.fp32_config().unwrap().c_transfer,
            ZaTransferStrategy::Direct
        );
        assert_eq!(tuned.fp32_config().unwrap().k_unroll, 4);
        assert_eq!(cache.stats().tuned_compiles, 1);
        assert_eq!(cache.lookup_tuned(&cfg).unwrap(), record);

        // A knob-variant of the same shape shares the tuned record…
        let variant = cfg.with_k_unroll(2);
        assert_eq!(tune_key(&variant), tune_key(&cfg));
        let tuned2 = cache.get_or_compile(&variant).unwrap();
        assert_eq!(tuned2.fp32_config().unwrap().k_unroll, 4, "tuned knobs win");
        // …and replace_store drops everything.
        cache.replace_store(PlanStore::new());
        assert!(cache.is_empty());
        assert_eq!(cache.lookup_tuned(&cfg), None);
    }

    #[test]
    fn backends_cache_independently_and_tuned_neon_winners_route() {
        let cache = KernelCache::new(16);
        let cfg = GemmConfig::abt(16, 4, 4);

        // The same configuration compiles once per backend…
        let (sme, hit) = cache.fetch(&cfg, Backend::Sme).unwrap();
        assert!(!hit);
        assert_eq!(sme.backend(), Backend::Sme);
        let (neon, hit) = cache.fetch(&cfg, Backend::Neon).unwrap();
        assert!(!hit);
        assert_eq!(neon.backend(), Backend::Neon);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
        // …and each repeat hits its own entry.
        let (again, hit) = cache.fetch(&cfg, Backend::Neon).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&neon, &again));

        // Installing a Neon winner redirects the backend-agnostic path.
        assert_eq!(cache.preferred_backend(&cfg), Backend::Sme);
        cache.install_tuned(
            &cfg,
            TunedRecord {
                candidate: PlanCandidate::neon_for(&cfg).expect("neon-supported shape"),
                tuned_cycles: 10.0,
                default_cycles: 20.0,
            },
        );
        assert_eq!(cache.preferred_backend(&cfg), Backend::Neon);
        assert!(cache.is_empty(), "both backends' kernels invalidated");
        let routed = cache.get_or_compile(&cfg).unwrap();
        assert_eq!(routed.backend(), Backend::Neon);
        assert_eq!(cache.stats().tuned_compiles, 1);

        // An explicit SME request still compiles the SME kernel (without
        // counting as a tuned compile: the record is for the other engine).
        let (sme2, _) = cache.fetch(&cfg, Backend::Sme).unwrap();
        assert_eq!(sme2.backend(), Backend::Sme);
        assert_eq!(cache.stats().tuned_compiles, 1);

        // Ragged shapes now compile on Neon; a layout the backend cannot
        // compile (column-major B) still reports the error.
        let ragged = GemmConfig::abt(33, 47, 8);
        assert!(cache.fetch(&ragged, Backend::Neon).is_ok());
        let col_major = GemmConfig::ab(33, 47, 8);
        assert!(cache.fetch(&col_major, Backend::Neon).is_err());
        assert!(cache.fetch(&col_major, Backend::Sme).is_ok());
    }

    #[test]
    fn bad_backend_records_never_make_a_valid_config_undispatchable() {
        // A store assembled in memory can carry a Neon record for a layout
        // the Neon generator cannot compile (load-time validation never
        // ran). The backend-agnostic path must ignore it and serve the SME
        // default, not propagate the Neon generator's error.
        let cache = KernelCache::new(16);
        let cfg = GemmConfig::ab(33, 47, 8); // column-major B is Neon-invalid
        cache.install_tuned(
            &cfg,
            TunedRecord {
                candidate: PlanCandidate {
                    backend: Backend::Neon,
                    ..PlanCandidate::default_for(&cfg)
                },
                tuned_cycles: 1.0,
                default_cycles: 1.0,
            },
        );
        assert_eq!(cache.preferred_backend(&cfg), Backend::Sme);
        let kernel = cache
            .get_or_compile(&cfg)
            .expect("valid configuration must stay dispatchable");
        assert_eq!(kernel.backend(), Backend::Sme);
        assert!(kernel.validate(5) < 1e-4);
        // An explicit Neon request still reports the honest error.
        assert!(cache.fetch(&cfg, Backend::Neon).is_err());
    }

    #[test]
    fn uncompilable_tuned_records_fall_back_to_the_default_plan() {
        // A store built in memory can carry records load-time validation
        // never saw; the cache must degrade to the default plan rather
        // than hard-fail a valid configuration.
        let cfg = GemmConfig::ab(32, 32, 8);
        let mut store = PlanStore::new();
        store.insert(
            &cfg,
            TunedRecord {
                // Heterogeneous is incompatible with column-major B.
                candidate: PlanCandidate {
                    backend: Backend::Sme,
                    kind: PlanKind::Heterogeneous,
                    c_transfer: ZaTransferStrategy::TwoStep,
                    k_unroll: 1,
                    schedule: KernelSchedule::Serial,
                },
                tuned_cycles: 1.0,
                default_cycles: 1.0,
            },
        );
        let cache = KernelCache::with_store(16, store);
        let kernel = cache.get_or_compile(&cfg).expect("falls back to default");
        assert!(kernel.validate(5) < 1e-4);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.tuned_compiles, 0, "fallback is counter-visible");
    }

    #[test]
    fn invalidate_and_len_track_entries() {
        let cache = KernelCache::new(16);
        let a = GemmConfig::abt(16, 16, 4);
        let b = GemmConfig::abt(16, 16, 8);
        cache.get_or_compile(&a).unwrap();
        cache.get_or_compile(&b).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.invalidate(&a));
        assert!(!cache.invalidate(&a), "already gone");
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn invalid_configurations_propagate_errors_and_are_not_cached() {
        let cache = KernelCache::new(16);
        let bad = GemmConfig::abt(0, 16, 4);
        assert!(cache.get_or_compile(&bad).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn stats_aggregate_the_shards_and_feed_the_obs_hub() {
        let cache = KernelCache::new(16);
        let hub = ObsHub::shared(64);
        cache.attach_obs(hub.clone());
        let cfgs: Vec<GemmConfig> = (1..=3).map(|i| GemmConfig::abt(16 * i, 16, 8)).collect();
        for cfg in &cfgs {
            cache.get_or_compile(cfg).unwrap();
            cache.get_or_compile(cfg).unwrap();
        }
        // The cache-wide snapshot is the sum of the per-shard snapshots.
        let total = cache.stats();
        assert_eq!((total.hits, total.misses), (3, 3));
        let mut summed = CacheStats::default();
        for shard in cache.shard_stats() {
            summed.accumulate(&shard);
        }
        assert_eq!(summed, total);
        // Keys spread over shards, so no single shard saw everything.
        assert!(cache.shard_stats().iter().any(|s| s.misses > 0));

        // The metrics registry saw the same counts, plus a compile span
        // per miss.
        assert_eq!(hub.metrics.counter("sme_cache_hits_total").get(), 3);
        assert_eq!(hub.metrics.counter("sme_cache_misses_total").get(), 3);
        assert_eq!(hub.metrics.gauge("sme_cache_hit_ratio").get(), 0.5);
        let compile = hub
            .metrics
            .histogram("sme_cache_compile_seconds")
            .snapshot();
        assert_eq!(compile.count, 3);
        assert_eq!(hub.trace.len(), 3);
        assert!(hub
            .trace
            .snapshot()
            .iter()
            .all(|s| s.name == "cache.compile"));
        // Evictions are exported through the snapshot (satellite: counted
        // today, never exported before).
        let snap = hub.metrics.snapshot_json();
        assert_eq!(
            snap.get("counters")
                .unwrap()
                .get("sme_cache_evictions_total")
                .unwrap()
                .as_u64(),
            Some(0)
        );
    }

    #[test]
    fn concurrent_requests_compile_each_kernel_once() {
        let cache = Arc::new(KernelCache::new(64));
        let cfgs: Vec<GemmConfig> = (1..=4).map(|i| GemmConfig::abt(16 * i, 16, 8)).collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = cache.clone();
                let cfgs = cfgs.clone();
                scope.spawn(move || {
                    for cfg in &cfgs {
                        cache.get_or_compile(cfg).unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 4, "each kernel compiled exactly once");
        assert_eq!(stats.hits, 8 * 4 - 4);
        assert_eq!(cache.len(), 4);
    }
}
