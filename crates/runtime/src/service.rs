//! The batched dispatch service: mixed-configuration GEMM traffic in, one
//! kernel fetch per distinct configuration, parallel execution out.
//!
//! A [`GemmService`] front-ends the [`KernelCache`]: callers submit a batch
//! of [`GemmRequest`]s with arbitrary (mixed) configurations, the service
//! groups them by configuration, fetches each group's kernel from the cache
//! exactly once, and fans the groups out across host threads via `rayon` —
//! each group executing its requests back to back on a private single-core
//! simulator, the way one core of the machine would serve them.
//! [`ExecStats`] are aggregated per configuration and for the whole batch,
//! and [`BatchReport::makespan_cycles`] projects the per-core totals onto a
//! multi-core machine with an LPT schedule.
//!
//! The service does not decide *which engine* runs a group: it delegates
//! routing. [`GemmService::dispatch`] follows each shape's tuned winner
//! (falling back to SME), and [`GemmService::dispatch_routed`] accepts an
//! explicit per-configuration backend decision — the hook the `sme-router`
//! crate's policy plugs into. The `sme-router` batch planner also replaces
//! the identical-cores makespan here with a placement over the machine's
//! real engine classes (two shared SME units + private Neon cores).

use crate::cache::KernelCache;
use crate::error::ServeError;
use crate::fault::{self, FaultKind};
use crate::tuner::{self, TuneOutcome, TunerOptions};
use rayon::prelude::*;
use sme_gemm::{AnyGemmConfig, Backend, Dtype, GemmConfig, GemmError, WideningGemmConfig};
use sme_machine::exec::{RunOptions, Simulator};
use sme_machine::ExecStats;
use sme_obs::TraceCtx;
use std::collections::HashMap;
use std::sync::Arc;

/// One GEMM execution request: a configuration of either datatype plus the
/// seed from which the operands are derived deterministically (the service
/// owns the simulated memory, so operands are generated, not passed by
/// pointer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmRequest {
    /// The kernel configuration.
    pub config: AnyGemmConfig,
    /// Seed for the pseudo-random A, B and initial C operands.
    pub seed: u64,
}

impl GemmRequest {
    /// An FP32 request.
    pub fn fp32(config: GemmConfig, seed: u64) -> Self {
        GemmRequest {
            config: AnyGemmConfig::Fp32(config),
            seed,
        }
    }

    /// A BF16 → FP32 widening request.
    pub fn widening(config: WideningGemmConfig, seed: u64) -> Self {
        GemmRequest {
            config: AnyGemmConfig::WideningBf16(config),
            seed,
        }
    }
}

/// Aggregated statistics for all requests sharing one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigReport {
    /// The configuration.
    pub config: AnyGemmConfig,
    /// The datatype family of the group's kernel.
    pub dtype: Dtype,
    /// The backend the group's kernel executed on.
    pub backend: Backend,
    /// `Some(original)` if the group was *degraded*: its routed backend
    /// failed (compile failure or a caught panic) and the group was served
    /// by the other backend instead. `None` for a healthy group.
    pub fallback_from: Option<Backend>,
    /// `true` if the group's single kernel fetch was served from the cache
    /// (`false`: the fetch compiled).
    pub cache_hit: bool,
    /// Number of requests in the batch with this configuration.
    pub requests: usize,
    /// Requests whose packed A/B operand images were served from the
    /// packed-operand cache (the remainder repacked them from the seed).
    pub pack_hits: usize,
    /// Execution statistics summed over those requests.
    pub stats: ExecStats,
}

/// Why one request failed after the serving layer exhausted its
/// degradation ladder (routed backend, then the fallback backend).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFailure {
    /// Index into the submitted request slice.
    pub index: usize,
    /// The configuration of the failed request's group.
    pub config: AnyGemmConfig,
    /// The error of the group's *first* (routed) attempt.
    pub error: ServeError,
}

/// The result of dispatching one batch.
///
/// A batch is never dropped wholesale: a group whose routed backend fails
/// (or panics) is retried once on the other backend, and only requests
/// whose group failed on *both* backends appear in
/// [`BatchReport::failures`] — their [`BatchReport::outputs`] slots stay
/// empty and they have no `per_config` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Resulting C buffers, indexed like the submitted request slice
    /// (empty for failed requests).
    pub outputs: Vec<Vec<f32>>,
    /// Per-configuration aggregates, in first-appearance order (failed
    /// groups excluded).
    pub per_config: Vec<ConfigReport>,
    /// Per-request failures, in request order (empty for a healthy batch).
    pub failures: Vec<RequestFailure>,
    /// Statistics summed over the whole batch.
    pub total: ExecStats,
}

impl BatchReport {
    /// Number of groups served by their fallback backend instead of the
    /// routed one.
    pub fn degraded_groups(&self) -> usize {
        self.per_config
            .iter()
            .filter(|c| c.fallback_from.is_some())
            .count()
    }

    /// Fraction of the batch's requests whose packed operands were served
    /// from the packed-operand cache (0 for an empty batch).
    pub fn pack_hit_ratio(&self) -> f64 {
        let requests: usize = self.per_config.iter().map(|c| c.requests).sum();
        if requests == 0 {
            return 0.0;
        }
        let hits: usize = self.per_config.iter().map(|c| c.pack_hits).sum();
        hits as f64 / requests as f64
    }

    /// Nominal floating-point operations of the whole batch.
    pub fn total_flops(&self) -> u64 {
        self.per_config
            .iter()
            .map(|c| c.config.flops() * c.requests as u64)
            .sum()
    }

    /// Modelled makespan (cycles) of the batch on `cores` identical cores,
    /// using a longest-processing-time greedy schedule of the
    /// per-configuration cycle totals (a group never splits across cores —
    /// it shares one kernel and one working set).
    pub fn makespan_cycles(&self, cores: usize) -> f64 {
        let cores = cores.max(1);
        let mut loads = vec![0.0f64; cores];
        let mut groups: Vec<f64> = self.per_config.iter().map(|c| c.stats.cycles).collect();
        groups.sort_by(|a, b| b.partial_cmp(a).expect("cycles are finite"));
        for cycles in groups {
            let min = loads
                .iter_mut()
                .min_by(|a, b| a.partial_cmp(b).expect("loads are finite"))
                .expect("at least one core");
            *min += cycles;
        }
        loads.into_iter().fold(0.0, f64::max)
    }

    /// Modelled throughput (GFLOPS) of the batch on `cores` identical
    /// cores: total nominal operations over the makespan.
    pub fn aggregate_gflops(&self, cores: usize) -> f64 {
        if self.total.clock_ghz == 0.0 {
            return 0.0;
        }
        let seconds = self.makespan_cycles(cores) / (self.total.clock_ghz * 1e9);
        if seconds == 0.0 {
            0.0
        } else {
            self.total_flops() as f64 / seconds / 1e9
        }
    }
}

/// The batched GEMM dispatch service.
#[derive(Debug, Clone)]
pub struct GemmService {
    cache: Arc<KernelCache>,
}

impl GemmService {
    /// Create a service with a fresh cache bounded to `cache_capacity`
    /// kernels and an empty plan store.
    pub fn new(cache_capacity: usize) -> Self {
        GemmService {
            cache: Arc::new(KernelCache::new(cache_capacity)),
        }
    }

    /// Create a service around an existing (possibly shared) cache.
    pub fn with_cache(cache: Arc<KernelCache>) -> Self {
        GemmService { cache }
    }

    /// The underlying kernel cache (counters, plan-store access).
    pub fn cache(&self) -> &KernelCache {
        &self.cache
    }

    /// Autotune an FP32 `cfg` and install the winner (see
    /// [`GemmService::tune_any`]).
    pub fn tune(&self, cfg: &GemmConfig, opts: &TunerOptions) -> Result<TuneOutcome, GemmError> {
        self.tune_any(&AnyGemmConfig::Fp32(*cfg), opts)
    }

    /// Autotune a configuration of either datatype and install the winner,
    /// so subsequent dispatches of this shape (whatever their knob
    /// settings) use the tuned kernel.
    pub fn tune_any(
        &self,
        cfg: &AnyGemmConfig,
        opts: &TunerOptions,
    ) -> Result<TuneOutcome, GemmError> {
        let outcome = tuner::tune_any(cfg, opts)?;
        self.cache.install_tuned_any(cfg, outcome.record());
        Ok(outcome)
    }

    /// Dispatch a batch of requests on each configuration's preferred
    /// backend (the tuned winner's engine, or the datatype's default engine
    /// for untuned shapes — see [`KernelCache::preferred_backend_any`]).
    pub fn dispatch(&self, requests: &[GemmRequest]) -> Result<BatchReport, GemmError> {
        self.dispatch_routed(requests, |cfg| self.cache.preferred_backend_any(cfg))
    }

    /// Dispatch a batch with an explicit routing decision per configuration.
    ///
    /// This is the hook the `sme-router` crate plugs its policy into: the
    /// service owns grouping, caching and fan-out, and delegates only the
    /// *which engine* question to `route` (called once per distinct
    /// configuration, not once per request). Batches may mix FP32 and BF16
    /// widening requests freely — the datatype travels inside the
    /// [`AnyGemmConfig`] key, so grouping, caching and telemetry never
    /// conflate the two families of one shape.
    ///
    /// Requests are grouped by configuration; each distinct configuration
    /// costs at most one cache miss, and the groups execute concurrently on
    /// private simulator instances. Results come back in request order.
    ///
    /// # Failure isolation
    /// A failing group — a routing decision its backend's generator cannot
    /// honour, a forced compile failure, or a panic mid-execution (caught
    /// at the group boundary) — never drops the batch. The group is
    /// retried once on the other backend; if that succeeds the group is
    /// served *degraded* ([`ConfigReport::fallback_from`], counted in
    /// `sme_degraded_dispatch_total`), and only if both backends fail do
    /// its requests land in [`BatchReport::failures`] while the rest of
    /// the batch completes normally. The `Result` is kept for API
    /// stability; dispatch itself always returns `Ok`.
    pub fn dispatch_routed(
        &self,
        requests: &[GemmRequest],
        route: impl Fn(&AnyGemmConfig) -> Backend + Sync,
    ) -> Result<BatchReport, GemmError> {
        self.dispatch_planned(requests, route, |_| 0.0)
    }

    /// [`GemmService::dispatch_routed`] with an explicit host-side
    /// execution order: groups are handed to the worker pool in descending
    /// `priority` order (ties keep first-appearance order), so a placement
    /// plan's schedule — longest contended group first — is what the host
    /// actually runs. The report is unaffected: `per_config` stays in
    /// first-appearance order and outputs stay in request order.
    pub fn dispatch_planned(
        &self,
        requests: &[GemmRequest],
        route: impl Fn(&AnyGemmConfig) -> Backend + Sync,
        priority: impl Fn(&AnyGemmConfig) -> f64,
    ) -> Result<BatchReport, GemmError> {
        self.dispatch_planned_traced(requests, route, priority, None)
    }

    /// [`GemmService::dispatch_planned`] with an explicit causal parent:
    /// each group's `service.group` span is parented to `ctx` (the batch
    /// root the router opened), and the group's kernel fetch is parented to
    /// the group span in turn. The group span's identity is allocated *on
    /// the worker thread*, so the parent→child edge crosses the rayon
    /// thread hop and the trace export draws it as a flow arrow.
    pub fn dispatch_planned_traced(
        &self,
        requests: &[GemmRequest],
        route: impl Fn(&AnyGemmConfig) -> Backend + Sync,
        priority: impl Fn(&AnyGemmConfig) -> f64,
        ctx: Option<TraceCtx>,
    ) -> Result<BatchReport, GemmError> {
        // Group request indices by configuration, first-appearance order.
        let mut group_of: HashMap<AnyGemmConfig, usize> = HashMap::new();
        let mut groups: Vec<(AnyGemmConfig, Vec<usize>)> = Vec::new();
        for (index, request) in requests.iter().enumerate() {
            match group_of.get(&request.config) {
                Some(&g) => groups[g].1.push(index),
                None => {
                    group_of.insert(request.config, groups.len());
                    groups.push((request.config, vec![index]));
                }
            }
        }

        // Hand groups to the worker pool highest-priority first (stable on
        // ties), so the caller's planned schedule is the submission order.
        let mut exec_order: Vec<usize> = (0..groups.len()).collect();
        exec_order.sort_by(|&a, &b| {
            priority(&groups[b].0)
                .partial_cmp(&priority(&groups[a].0))
                .expect("priorities are finite")
        });

        // Fan the groups out across host threads. The cache is shared and
        // thread-safe, so the kernel fetch happens inside the worker: one
        // miss per distinct (configuration, backend), hits for repeats
        // across batches.
        struct GroupRun {
            outputs: Vec<(usize, Vec<f32>)>,
            stats: ExecStats,
            backend: Backend,
            cache_hit: bool,
            pack_hits: usize,
            fallback_from: Option<Backend>,
        }
        let results: Vec<(usize, Result<GroupRun, ServeError>)> = exec_order
            .par_iter()
            .map(|&g| {
                let (config, indices) = &groups[g];
                let routed = route(config);
                // One attempt on one backend. `inject` arms the
                // fault-injection hooks only for the routed attempt, so a
                // chaos schedule can never fail both rungs of the ladder
                // with a single rule.
                let run = |backend: Backend, inject: bool| -> Result<GroupRun, ServeError> {
                    let group_started = std::time::Instant::now();
                    // Allocate the group span's identity here, on the
                    // worker thread, so the parent edge crosses the hop.
                    let group_ctx = self.cache.obs().and_then(|hub| {
                        sme_obs::set_thread_name_indexed("rayon-worker");
                        ctx.map(|root| hub.trace.child_ctx(root))
                    });
                    if inject {
                        let site = format!(
                            "service.group:{}:{} {}x{}x{}",
                            backend.name(),
                            config.dtype(),
                            config.m(),
                            config.n(),
                            config.k()
                        );
                        if fault::fire(FaultKind::GroupPanic, &site) {
                            panic!("sme-fault-injected: group panic at {site}");
                        }
                        if fault::fire(FaultKind::CompileFail, &site) {
                            return Err(ServeError::Compile {
                                backend,
                                detail: format!("injected compile failure at {site}"),
                            });
                        }
                    }
                    let (kernel, cache_hit) = self
                        .cache
                        .fetch_any_traced(config, backend, group_ctx)
                        .map_err(|e| match e {
                            GemmError::Unsupported(detail) => {
                                ServeError::Compile { backend, detail }
                            }
                            other => ServeError::Gemm(other),
                        })?;
                    let mut sim = Simulator::m4_performance();
                    let mut stats = ExecStats::default();
                    let mut outputs = Vec::with_capacity(indices.len());
                    let mut pack_hits = 0usize;
                    for &index in indices {
                        let seed = requests[index].seed;
                        // Packed A/B images replay from the operand cache;
                        // only C (the output) is refreshed from the seed.
                        let (images, pack_hit) = self.cache.packs().get_or_pack(&kernel, seed);
                        pack_hits += pack_hit as usize;
                        let bufs = kernel.allocate_buffers_packed(&mut sim, seed, &images);
                        let result = kernel.run(&mut sim, bufs, &RunOptions::default());
                        stats.merge(&result.stats);
                        outputs.push((index, sim.mem.read_f32_slice(bufs.c, config.c_len())));
                    }
                    if let Some(hub) = self.cache.obs() {
                        let span_ctx = group_ctx.unwrap_or_else(|| hub.trace.root_ctx());
                        hub.metrics.histogram("sme_group_cycles").record_exemplar(
                            stats.cycles,
                            span_ctx.trace_id,
                            span_ctx.span_id,
                        );
                        hub.trace.record_ctx(
                            "service.group",
                            "service",
                            group_started,
                            span_ctx,
                            vec![
                                (
                                    "config".to_string(),
                                    serde::json::Value::String(format!(
                                        "{} {}x{}x{}",
                                        config.dtype(),
                                        config.m(),
                                        config.n(),
                                        config.k()
                                    )),
                                ),
                                (
                                    "backend".to_string(),
                                    serde::json::Value::String(backend.name().to_string()),
                                ),
                                (
                                    "requests".to_string(),
                                    serde::json::Value::Number(indices.len() as f64),
                                ),
                                (
                                    "cycles".to_string(),
                                    serde::json::Value::Number(stats.cycles),
                                ),
                                ("cache_hit".to_string(), serde::json::Value::Bool(cache_hit)),
                                (
                                    "pack_hits".to_string(),
                                    serde::json::Value::Number(pack_hits as f64),
                                ),
                            ],
                        );
                    }
                    Ok(GroupRun {
                        outputs,
                        stats,
                        backend,
                        cache_hit,
                        pack_hits,
                        fallback_from: None,
                    })
                };
                // Panic isolation: a group that panics (kernel bug or
                // injected fault) is caught at the group boundary and
                // enters the same ladder as a compile failure.
                let attempt = |backend: Backend, inject: bool| -> Result<GroupRun, ServeError> {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run(backend, inject)
                    })) {
                        Ok(result) => result,
                        Err(payload) => Err(ServeError::ExecPanic {
                            backend,
                            detail: panic_detail(payload.as_ref()),
                        }),
                    }
                };
                let result = match attempt(routed, true) {
                    Ok(group) => Ok(group),
                    Err(first) => {
                        let fallback = match routed {
                            Backend::Sme => Backend::Neon,
                            Backend::Neon => Backend::Sme,
                        };
                        let degraded_started = std::time::Instant::now();
                        match attempt(fallback, false) {
                            Ok(mut group) => {
                                group.fallback_from = Some(routed);
                                if let Some(hub) = self.cache.obs() {
                                    hub.metrics.counter("sme_degraded_dispatch_total").inc();
                                    let span_ctx = ctx
                                        .map(|root| hub.trace.child_ctx(root))
                                        .unwrap_or_else(|| hub.trace.root_ctx());
                                    hub.trace.record_ctx(
                                        "service.degraded",
                                        "chaos",
                                        degraded_started,
                                        span_ctx,
                                        vec![
                                            (
                                                "config".to_string(),
                                                serde::json::Value::String(format!(
                                                    "{} {}x{}x{}",
                                                    config.dtype(),
                                                    config.m(),
                                                    config.n(),
                                                    config.k()
                                                )),
                                            ),
                                            (
                                                "from".to_string(),
                                                serde::json::Value::String(
                                                    routed.name().to_string(),
                                                ),
                                            ),
                                            (
                                                "to".to_string(),
                                                serde::json::Value::String(
                                                    fallback.name().to_string(),
                                                ),
                                            ),
                                            (
                                                "error".to_string(),
                                                serde::json::Value::String(first.to_string()),
                                            ),
                                        ],
                                    );
                                }
                                Ok(group)
                            }
                            Err(_second) => Err(first),
                        }
                    }
                };
                (g, result)
            })
            .collect();
        let mut executed: Vec<Option<Result<GroupRun, ServeError>>> =
            (0..groups.len()).map(|_| None).collect();
        for (g, result) in results {
            executed[g] = Some(result);
        }

        let mut outputs: Vec<Vec<f32>> = vec![Vec::new(); requests.len()];
        let mut per_config = Vec::with_capacity(groups.len());
        let mut failures: Vec<RequestFailure> = Vec::new();
        let mut total = ExecStats::default();
        for ((config, indices), result) in groups.iter().zip(executed) {
            match result.expect("every group executed") {
                Ok(group) => {
                    for (index, c) in group.outputs {
                        outputs[index] = c;
                    }
                    total.merge(&group.stats);
                    per_config.push(ConfigReport {
                        config: *config,
                        dtype: config.dtype(),
                        backend: group.backend,
                        fallback_from: group.fallback_from,
                        cache_hit: group.cache_hit,
                        requests: indices.len(),
                        pack_hits: group.pack_hits,
                        stats: group.stats,
                    });
                }
                Err(error) => {
                    if let Some(hub) = self.cache.obs() {
                        hub.metrics
                            .counter("sme_request_failures_total")
                            .add(indices.len() as u64);
                    }
                    for &index in indices {
                        failures.push(RequestFailure {
                            index,
                            config: *config,
                            error: error.clone(),
                        });
                    }
                }
            }
        }
        failures.sort_by_key(|f| f.index);
        Ok(BatchReport {
            outputs,
            per_config,
            failures,
            total,
        })
    }
}

/// Stringify a caught panic payload (the common `&str` / `String` cases,
/// with a fallback for exotic payloads).
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_gemm::reference::{fill_matrix, gemm_reference};

    /// The C buffer the scalar reference produces for one request.
    fn reference_output(request: &GemmRequest) -> Vec<f32> {
        let cfg = request.config.as_fp32().expect("FP32 request");
        let mut a = vec![0.0f32; cfg.a_len()];
        let mut b = vec![0.0f32; cfg.b_len()];
        let mut c = vec![0.0f32; cfg.c_len()];
        // Mirror CompiledKernel::allocate_buffers' seeding scheme.
        fill_matrix(request.seed, &mut a);
        fill_matrix(request.seed ^ 0x1111_1111, &mut b);
        fill_matrix(request.seed ^ 0x2222_2222, &mut c);
        gemm_reference(cfg, &a, &b, &mut c);
        c
    }

    #[test]
    fn mixed_batch_groups_by_config_and_orders_outputs() {
        let service = GemmService::new(16);
        let abt = GemmConfig::abt(20, 12, 6);
        let ab = GemmConfig::ab(16, 16, 8);
        let requests = [
            GemmRequest::fp32(abt, 1),
            GemmRequest::fp32(ab, 2),
            GemmRequest::fp32(abt, 3),
            GemmRequest::fp32(ab, 4),
            GemmRequest::fp32(abt, 5),
        ];
        let report = service.dispatch(&requests).unwrap();
        assert_eq!(report.outputs.len(), 5);
        assert_eq!(report.per_config.len(), 2, "two distinct configurations");
        assert_eq!(
            report.per_config[0].config,
            abt.into(),
            "first-appearance order"
        );
        assert_eq!(report.per_config[0].requests, 3);
        assert_eq!(report.per_config[1].requests, 2);
        // One compile per distinct configuration.
        let stats = service.cache().stats();
        assert_eq!(stats.misses, 2);
        // Each output matches its own request's reference, so grouping did
        // not permute results.
        for (request, output) in requests.iter().zip(&report.outputs) {
            let reference = reference_output(request);
            let err = output
                .iter()
                .zip(&reference)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(err < 1e-4, "{}: max abs error {err}", request.config);
        }
        // Totals aggregate the per-config stats.
        let summed: u64 = report.per_config.iter().map(|c| c.stats.instructions).sum();
        assert_eq!(report.total.instructions, summed);
        assert_eq!(report.total_flops(), 3 * abt.flops() + 2 * ab.flops());
    }

    #[test]
    fn repeat_batches_are_served_from_the_cache() {
        let service = GemmService::new(16);
        let requests = [GemmRequest::fp32(GemmConfig::abt(16, 16, 4), 9)];
        let first = service.dispatch(&requests).unwrap();
        let second = service.dispatch(&requests).unwrap();
        assert_eq!(first.outputs, second.outputs, "deterministic results");
        let stats = service.cache().stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let service = GemmService::new(4);
        let report = service.dispatch(&[]).unwrap();
        assert!(report.outputs.is_empty());
        assert!(report.per_config.is_empty());
        assert_eq!(report.total, ExecStats::default());
        assert_eq!(report.total_flops(), 0);
        assert_eq!(report.makespan_cycles(4), 0.0);
        assert_eq!(report.aggregate_gflops(4), 0.0);
    }

    #[test]
    fn invalid_requests_fail_alone_not_the_batch() {
        let service = GemmService::new(4);
        let requests = [
            GemmRequest::fp32(GemmConfig::abt(16, 16, 4), 0),
            GemmRequest::fp32(GemmConfig::abt(0, 16, 4), 0),
        ];
        let report = service.dispatch(&requests).unwrap();
        // The valid request completes bit-correct…
        assert_eq!(report.outputs[0], reference_output(&requests[0]));
        // …and the invalid one is reported per-request: no backend could
        // ever serve it, so it is not a degradation, it is a rejection.
        assert!(report.outputs[1].is_empty());
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].index, 1);
        assert_eq!(report.failures[0].error.category(), "invalid_config");
        assert_eq!(report.per_config.len(), 1, "failed group has no report");
        assert_eq!(report.degraded_groups(), 0);
    }

    #[test]
    fn injected_faults_degrade_to_the_fallback_backend() {
        use crate::fault::{FaultKind, FaultPlan, FaultRule, SitePattern};
        let service = GemmService::new(16);
        let cfg = GemmConfig::abt(32, 32, 8);
        let requests = [GemmRequest::fp32(cfg, 1), GemmRequest::fp32(cfg, 2)];
        let plan = Arc::new(FaultPlan::with_rules(
            0,
            vec![
                FaultRule {
                    kind: FaultKind::GroupPanic,
                    pattern: SitePattern::Contains(":Sme:".to_string()),
                    occurrence: 1,
                },
                FaultRule {
                    kind: FaultKind::CompileFail,
                    pattern: SitePattern::Contains(":Sme:".to_string()),
                    occurrence: 1,
                },
            ],
        ));
        crate::fault::install_injector(plan);
        // Batch 1: the SME group panics mid-dispatch; batch 2: its compile
        // is forced to fail. Both are served by the Neon fallback.
        let panicked = service.dispatch(&requests).unwrap();
        let compile_failed = service.dispatch(&requests).unwrap();
        crate::fault::clear_injector();
        let healthy = service.dispatch(&requests).unwrap();

        for (label, report) in [("panic", &panicked), ("compile", &compile_failed)] {
            assert!(report.failures.is_empty(), "{label}: no dropped requests");
            assert_eq!(report.degraded_groups(), 1, "{label}: degraded");
            assert_eq!(report.per_config[0].backend, Backend::Neon, "{label}");
            assert_eq!(
                report.per_config[0].fallback_from,
                Some(Backend::Sme),
                "{label}"
            );
        }
        assert_eq!(healthy.degraded_groups(), 0);
        assert_eq!(healthy.per_config[0].backend, Backend::Sme);
        // Degraded output equals a clean run on the fallback backend, bit
        // for bit (the simulator is deterministic per backend).
        let neon_clean = service
            .dispatch_routed(&requests, |_| Backend::Neon)
            .unwrap();
        assert_eq!(panicked.outputs, neon_clean.outputs);
        assert_eq!(compile_failed.outputs, neon_clean.outputs);
        // And the error ladder is visible in the panic case's span-free
        // sibling: a clean SME run still bit-matches the FP32 reference.
        assert_eq!(healthy.outputs[0], reference_output(&requests[0]));
    }

    #[test]
    fn makespan_shrinks_with_more_cores_and_bounds_hold() {
        let service = GemmService::new(16);
        let mut requests = Vec::new();
        for (i, mn) in [16usize, 24, 32, 40].into_iter().enumerate() {
            for r in 0..3 {
                requests.push(GemmRequest::fp32(
                    GemmConfig::abt(mn, mn, 8),
                    (i * 10 + r) as u64,
                ));
            }
        }
        let report = service.dispatch(&requests).unwrap();
        let serial = report.makespan_cycles(1);
        let quad = report.makespan_cycles(4);
        assert!((serial - report.total.cycles).abs() < 1e-6 * serial);
        assert!(quad <= serial);
        // The makespan can never beat a perfect split or the largest group.
        let largest = report
            .per_config
            .iter()
            .map(|c| c.stats.cycles)
            .fold(0.0f64, f64::max);
        assert!(quad >= serial / 4.0 - 1e-9);
        assert!(quad >= largest - 1e-9);
        assert!(report.aggregate_gflops(4) >= report.aggregate_gflops(1));
    }

    #[test]
    fn routed_dispatch_controls_the_backend_per_config() {
        let service = GemmService::new(16);
        let neonable = GemmConfig::abt(16, 4, 4);
        let sme_only = GemmConfig::ab(33, 17, 5); // column-major B is Neon-invalid
        let requests = [
            GemmRequest::fp32(neonable, 1),
            GemmRequest::fp32(sme_only, 2),
        ];
        let report = service
            .dispatch_routed(&requests, |cfg| {
                if *cfg == neonable.into() {
                    Backend::Neon
                } else {
                    Backend::Sme
                }
            })
            .unwrap();
        assert_eq!(report.per_config[0].backend, Backend::Neon);
        assert_eq!(report.per_config[1].backend, Backend::Sme);
        assert!(!report.per_config[0].cache_hit, "first sight compiles");
        // Results still match the per-request reference, whatever the engine.
        for (request, output) in requests.iter().zip(&report.outputs) {
            let reference = reference_output(request);
            let err = output
                .iter()
                .zip(&reference)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(err < 1e-4, "{}: max abs error {err}", request.config);
        }
        // A repeat is served from the per-backend cache entry.
        let again = service
            .dispatch_routed(&requests, |cfg| {
                if *cfg == neonable.into() {
                    Backend::Neon
                } else {
                    Backend::Sme
                }
            })
            .unwrap();
        assert!(again.per_config.iter().all(|c| c.cache_hit));
        assert_eq!(report.outputs, again.outputs);

        // Routing a layout the backend cannot compile no longer fails the
        // batch: the group falls back to the other backend and completes,
        // reported as degraded.
        let degraded = service
            .dispatch_routed(&requests, |_| Backend::Neon)
            .unwrap();
        assert!(degraded.failures.is_empty());
        assert_eq!(degraded.degraded_groups(), 1);
        let fell_back = degraded
            .per_config
            .iter()
            .find(|c| c.config == sme_only.into())
            .expect("group served");
        assert_eq!(fell_back.backend, Backend::Sme);
        assert_eq!(fell_back.fallback_from, Some(Backend::Neon));
        for (request, output) in requests.iter().zip(&degraded.outputs) {
            let reference = reference_output(request);
            let err = output
                .iter()
                .zip(&reference)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(err < 1e-4, "{}: max abs error {err}", request.config);
        }
        // The default dispatch of an untuned shape stays on SME.
        let default = service.dispatch(&requests[1..]).unwrap();
        assert_eq!(default.per_config[0].backend, Backend::Sme);
    }

    #[test]
    fn planned_dispatch_reorders_execution_but_not_the_report() {
        let service = GemmService::new(16);
        let small = GemmConfig::abt(16, 4, 4);
        let large = GemmConfig::abt(48, 48, 32);
        let requests = [
            GemmRequest::fp32(small, 1),
            GemmRequest::fp32(large, 2),
            GemmRequest::fp32(small, 3),
        ];
        let routed = service
            .dispatch_routed(&requests, |_| Backend::Sme)
            .unwrap();
        // Submit the large group first: results and report order must be
        // identical to the unprioritized dispatch.
        let planned = service
            .dispatch_planned(&requests, |_| Backend::Sme, |cfg| cfg.m() as f64)
            .unwrap();
        assert_eq!(planned.outputs, routed.outputs);
        assert_eq!(planned.per_config.len(), 2);
        assert_eq!(planned.per_config[0].config, small.into());
        assert_eq!(planned.per_config[1].config, large.into());
        assert_eq!(planned.total, routed.total);
    }

    #[test]
    fn mixed_dtype_batches_group_and_report_per_dtype() {
        use sme_gemm::{widening_rel_error, WIDENING_REL_TOL};
        let service = GemmService::new(16);
        let fp32 = GemmConfig::abt(32, 32, 8);
        let wide = WideningGemmConfig::new(32, 32, 8).unwrap();
        let requests = [
            GemmRequest::fp32(fp32, 1),
            GemmRequest::widening(wide, 2),
            GemmRequest::fp32(fp32, 3),
            GemmRequest::widening(wide, 4),
        ];
        let report = service.dispatch(&requests).unwrap();
        assert_eq!(report.per_config.len(), 2, "same shape, distinct dtypes");
        assert_eq!(report.per_config[0].dtype, Dtype::Fp32);
        assert_eq!(report.per_config[1].dtype, Dtype::WideningBf16);
        assert_eq!(
            service.cache().stats().misses,
            2,
            "one compile per (config, dtype)"
        );
        // FP32 outputs bit-match the scalar reference path…
        for (request, output) in requests.iter().zip(&report.outputs).step_by(2) {
            assert_eq!(output, &reference_output(request));
        }
        // …and widening outputs stay within the BF16 oracle tolerance.
        for (request, output) in requests.iter().zip(&report.outputs).skip(1).step_by(2) {
            let mut a = vec![0.0f32; wide.m * wide.k];
            let mut b = vec![0.0f32; wide.k * wide.n];
            let mut c = vec![0.0f32; wide.c_len()];
            fill_matrix(request.seed, &mut a);
            fill_matrix(request.seed ^ 0x1111_1111, &mut b);
            fill_matrix(request.seed ^ 0x2222_2222, &mut c);
            sme_gemm::widening_reference(&wide, &a, &b, &mut c);
            let err = widening_rel_error(output, &c);
            assert!(err < WIDENING_REL_TOL, "widening error {err}");
        }
        assert_eq!(
            report.total_flops(),
            2 * fp32.flops() + 2 * wide.flops(),
            "flops aggregate across dtypes"
        );
        // A repeat batch is served entirely from the cache.
        let again = service.dispatch(&requests).unwrap();
        assert!(again.per_config.iter().all(|c| c.cache_hit));
        assert_eq!(report.outputs, again.outputs);
    }

    #[test]
    fn tuning_through_the_service_redirects_dispatch() {
        let service = GemmService::new(16);
        let cfg = GemmConfig::abt(64, 16, 32);
        let requests = [GemmRequest::fp32(cfg, 3)];
        let untuned = service.dispatch(&requests).unwrap();
        let outcome = service.tune(&cfg, &TunerOptions::default()).unwrap();
        assert!(outcome.tuned_cycles <= outcome.default_cycles);
        let tuned = service.dispatch(&requests).unwrap();
        // Results are unchanged…
        assert_eq!(untuned.outputs, tuned.outputs);
        // …and the tuned dispatch is no slower in the model.
        assert!(tuned.total.cycles <= untuned.total.cycles + 1e-9);
        assert_eq!(service.cache().stats().tuned_compiles, 1);
    }
}
