//! The autotuner: score every candidate kernel on the timing model, keep
//! the winner.
//!
//! "Demystifying ARM SME" (see PAPERS.md) observes that the best blocking
//! and transfer strategy varies with the problem shape, so a single default
//! plan leaves performance behind. The tuner enumerates the candidates
//! exposed by [`sme_gemm::enumerate_candidates`] — block-plan kinds ×
//! ZA-transfer strategies × unroll factors — generates each kernel, and
//! scores it by **simulated cycles** on the `sme-machine` timing model (one
//! M4 performance core). Because the candidate set always contains the
//! default, the winner can never be slower than the untuned kernel in the
//! model.

use crate::store::{tune_key, PlanStore, TunedRecord};
use rayon::prelude::*;
use sme_gemm::{enumerate_candidates, generate_tuned, GemmConfig, GemmError, PlanCandidate};

/// Knobs controlling how much of the candidate space the tuner explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunerOptions {
    /// Also try the non-default ZA transfer strategy.
    pub sweep_transfer: bool,
    /// Also try the non-default contraction-loop unroll factors.
    pub sweep_k_unroll: bool,
}

impl Default for TunerOptions {
    /// Explore the full candidate space.
    fn default() -> Self {
        TunerOptions {
            sweep_transfer: true,
            sweep_k_unroll: true,
        }
    }
}

impl TunerOptions {
    /// Plan kinds only — the cheapest useful sweep (4 candidates for
    /// row-major B), used by doc examples and smoke tests.
    pub fn quick() -> Self {
        TunerOptions {
            sweep_transfer: false,
            sweep_k_unroll: false,
        }
    }
}

/// The result of tuning one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneOutcome {
    /// The normalized configuration the outcome is stored under.
    pub key: GemmConfig,
    /// The winning candidate.
    pub winner: PlanCandidate,
    /// Simulated cycles of the winner.
    pub tuned_cycles: f64,
    /// Simulated cycles of the default candidate.
    pub default_cycles: f64,
    /// Number of candidates generated and simulated.
    pub candidates_tried: usize,
}

impl TuneOutcome {
    /// Modelled speed-up over the default plan (≥ 1).
    pub fn speedup(&self) -> f64 {
        if self.tuned_cycles == 0.0 {
            1.0
        } else {
            self.default_cycles / self.tuned_cycles
        }
    }

    /// The record to persist in a [`PlanStore`].
    pub fn record(&self) -> TunedRecord {
        TunedRecord {
            candidate: self.winner,
            tuned_cycles: self.tuned_cycles,
            default_cycles: self.default_cycles,
        }
    }
}

/// Tune one configuration: generate and timing-simulate every candidate,
/// return the cycle-count winner.
///
/// Candidates are simulated in parallel on the host (each on its own
/// single-core simulator instance); the winner is deterministic — ties are
/// broken towards the default candidate first and then towards the earlier
/// candidate in enumeration order.
pub fn tune(cfg: &GemmConfig, opts: &TunerOptions) -> Result<TuneOutcome, GemmError> {
    cfg.validate()?;
    let default = PlanCandidate::default_for(cfg);
    let candidates: Vec<PlanCandidate> = enumerate_candidates(cfg)
        .into_iter()
        .filter(|c| {
            (opts.sweep_transfer || c.c_transfer == default.c_transfer)
                && (opts.sweep_k_unroll || c.k_unroll == default.k_unroll)
        })
        .collect();
    debug_assert!(candidates.contains(&default));

    let scored: Vec<Result<(PlanCandidate, f64), GemmError>> = candidates
        .par_iter()
        .map(|candidate| {
            let kernel = generate_tuned(cfg, candidate)?;
            Ok((*candidate, kernel.model_stats().cycles))
        })
        .collect();

    let mut default_cycles = None;
    let mut best: Option<(PlanCandidate, f64)> = None;
    for result in scored {
        let (candidate, cycles) = result?;
        if candidate == default {
            default_cycles = Some(cycles);
        }
        let better = match &best {
            None => true,
            Some((best_candidate, best_cycles)) => {
                cycles < *best_cycles
                    || (cycles == *best_cycles
                        && candidate == default
                        && *best_candidate != default)
            }
        };
        if better {
            best = Some((candidate, cycles));
        }
    }
    let (winner, tuned_cycles) = best.expect("candidate set is never empty");
    let default_cycles = default_cycles.expect("default candidate is always enumerated");
    Ok(TuneOutcome {
        key: tune_key(cfg),
        winner,
        tuned_cycles,
        default_cycles,
        candidates_tried: candidates.len(),
    })
}

/// Tune `cfg` and persist the winner into `store`. Returns the outcome.
pub fn tune_into_store(
    cfg: &GemmConfig,
    opts: &TunerOptions,
    store: &mut PlanStore,
) -> Result<TuneOutcome, GemmError> {
    let outcome = tune(cfg, opts)?;
    store.insert(cfg, outcome.record());
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_gemm::{BLayout, PlanKind};

    #[test]
    fn tuning_never_loses_to_the_default() {
        for cfg in [
            GemmConfig::abt(32, 32, 16),
            GemmConfig::abt(80, 16, 16),
            GemmConfig::ab(32, 32, 16),
        ] {
            let outcome = tune(&cfg, &TunerOptions::default()).unwrap();
            assert!(
                outcome.tuned_cycles <= outcome.default_cycles,
                "{cfg}: tuned {} > default {}",
                outcome.tuned_cycles,
                outcome.default_cycles
            );
            assert!(outcome.speedup() >= 1.0);
            assert!(outcome.candidates_tried >= 2);
        }
    }

    #[test]
    fn quick_options_restrict_the_sweep() {
        let cfg = GemmConfig::abt(32, 32, 16);
        let quick = tune(&cfg, &TunerOptions::quick()).unwrap();
        // Plan kinds only: 4 candidates for row-major B.
        assert_eq!(quick.candidates_tried, 4);
        assert_eq!(quick.winner.c_transfer, cfg.c_transfer);
        assert_eq!(quick.winner.k_unroll, cfg.k_unroll);
        let full = tune(&cfg, &TunerOptions::default()).unwrap();
        assert!(full.candidates_tried > quick.candidates_tried);
        assert!(full.tuned_cycles <= quick.tuned_cycles);
    }

    #[test]
    fn tall_thin_shapes_prefer_matching_blockings() {
        // A 64×16 output fits one B64x16 accumulator exactly; the
        // heterogeneous default covers it the same way, so the winner must
        // be at least as good and use a plan with a single microkernel.
        let cfg = GemmConfig::abt(64, 16, 32);
        let outcome = tune(&cfg, &TunerOptions::quick()).unwrap();
        let kernel = generate_tuned(&cfg, &outcome.winner).unwrap();
        assert_eq!(kernel.plan().num_microkernels(), 1);
    }

    #[test]
    fn column_major_tuning_stays_on_the_panel_plan() {
        let cfg = GemmConfig::ab(48, 48, 16);
        let outcome = tune(&cfg, &TunerOptions::default()).unwrap();
        assert_eq!(outcome.winner.kind, PlanKind::ColumnPanels);
        assert_eq!(cfg.b_layout, BLayout::ColMajor);
    }

    #[test]
    fn outcome_round_trips_through_the_store() {
        let cfg = GemmConfig::abt(48, 48, 16);
        let mut store = PlanStore::new();
        let outcome = tune_into_store(&cfg, &TunerOptions::quick(), &mut store).unwrap();
        let record = store.lookup(&cfg).copied().unwrap();
        assert_eq!(record, outcome.record());
        let reloaded = PlanStore::from_json(&store.to_json()).unwrap();
        assert_eq!(reloaded.lookup(&cfg).copied().unwrap(), record);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(tune(&GemmConfig::abt(0, 8, 8), &TunerOptions::quick()).is_err());
    }
}
