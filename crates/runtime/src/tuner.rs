//! The autotuner: score every candidate kernel on the timing model, keep
//! the winner.
//!
//! "Demystifying ARM SME" (see PAPERS.md) observes that the best blocking
//! and transfer strategy varies with the problem shape, so a single default
//! plan leaves performance behind. The tuner enumerates the candidates
//! exposed by [`sme_gemm::enumerate_candidates`] — block-plan kinds ×
//! ZA-transfer strategies × unroll factors × kernel schedules
//! (serial or software-pipelined), **plus the Neon backend** for
//! shapes its generator supports — generates each kernel, and scores it by
//! **simulated cycles** on the `sme-machine` timing model (one M4
//! performance core). Because the candidate set always contains the
//! default, the winner can never be slower than the untuned kernel in the
//! model; because it contains both engines, the winner lands on whichever
//! side of the Fig. 1 SME/Neon crossover the shape falls.
//!
//! Timing simulation dominates tuning cost, so an analytic pre-filter
//! ([`sme_gemm::prune_dominated_candidates`]) drops block plans that are
//! dominated on loads-per-k-step *and* microkernel count before anything
//! is generated.

use crate::store::{tune_key_any, PlanStore, TunedRecord};
use rayon::prelude::*;
use sme_gemm::{
    default_any_candidate, enumerate_any_candidates, generate_any_routed,
    prune_dominated_candidates, prune_dominated_widening_candidates, AnyGemmConfig, Backend,
    GemmConfig, GemmError, PlanCandidate,
};

/// Knobs controlling how much of the candidate space the tuner explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunerOptions {
    /// Also try the non-default ZA transfer strategy.
    pub sweep_transfer: bool,
    /// Also try the non-default contraction-loop unroll factors.
    pub sweep_k_unroll: bool,
    /// Also score the Neon backend candidate, so the winner picks the
    /// faster engine for the shape (on by default).
    pub sweep_backends: bool,
    /// Also try the software-pipelined kernel schedule, which overlaps the
    /// next block's first packed loads with the current block's ZA store
    /// (on by default).
    pub sweep_schedule: bool,
    /// Prune analytically dominated SME candidates before simulating (on by
    /// default; disable to force the exhaustive sweep, e.g. when validating
    /// the pre-filter itself).
    pub prefilter: bool,
}

impl Default for TunerOptions {
    /// Explore the full candidate space (with the analytic pre-filter).
    fn default() -> Self {
        TunerOptions {
            sweep_transfer: true,
            sweep_k_unroll: true,
            sweep_backends: true,
            sweep_schedule: true,
            prefilter: true,
        }
    }
}

impl TunerOptions {
    /// Plan kinds and backends only — the cheapest useful sweep, used by
    /// doc examples and smoke tests.
    pub fn quick() -> Self {
        TunerOptions {
            sweep_transfer: false,
            sweep_k_unroll: false,
            sweep_schedule: false,
            ..TunerOptions::default()
        }
    }

    /// The full sweep without the analytic pre-filter (every candidate is
    /// generated and simulated).
    pub fn exhaustive() -> Self {
        TunerOptions {
            prefilter: false,
            ..TunerOptions::default()
        }
    }
}

/// The result of tuning one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneOutcome {
    /// The normalized configuration the outcome is stored under.
    pub key: AnyGemmConfig,
    /// The winning candidate.
    pub winner: PlanCandidate,
    /// Simulated cycles of the winner.
    pub tuned_cycles: f64,
    /// Simulated cycles of the default candidate.
    pub default_cycles: f64,
    /// Number of candidates generated and simulated.
    pub candidates_tried: usize,
    /// Number of candidates the analytic pre-filter discarded without
    /// simulating.
    pub candidates_pruned: usize,
}

impl TuneOutcome {
    /// Modelled speed-up over the default plan (≥ 1).
    pub fn speedup(&self) -> f64 {
        if self.tuned_cycles == 0.0 {
            1.0
        } else {
            self.default_cycles / self.tuned_cycles
        }
    }

    /// The record to persist in a [`PlanStore`].
    pub fn record(&self) -> TunedRecord {
        TunedRecord {
            candidate: self.winner,
            tuned_cycles: self.tuned_cycles,
            default_cycles: self.default_cycles,
        }
    }
}

/// Tune one FP32 configuration (see [`tune_any`]).
pub fn tune(cfg: &GemmConfig, opts: &TunerOptions) -> Result<TuneOutcome, GemmError> {
    tune_any(&AnyGemmConfig::Fp32(*cfg), opts)
}

/// Tune one configuration of either datatype: generate and timing-simulate
/// every candidate (across both backends unless restricted), return the
/// cycle-count winner.
///
/// Candidates are simulated in parallel on the host (each on its own
/// single-core simulator instance); the winner is deterministic — ties are
/// broken towards the default candidate first and then towards the earlier
/// candidate in enumeration order. The analytic pre-filter applies to both
/// datatypes' SME block-plan spaces (the widening space grew the same
/// edge-bearing plan kinds as FP32 when the masked-tile path landed).
pub fn tune_any(cfg: &AnyGemmConfig, opts: &TunerOptions) -> Result<TuneOutcome, GemmError> {
    cfg.validate()?;
    let default = default_any_candidate(cfg);
    let enumerated: Vec<PlanCandidate> = enumerate_any_candidates(cfg)
        .into_iter()
        .filter(|c| {
            c.backend != Backend::Sme
                || ((opts.sweep_transfer || c.c_transfer == default.c_transfer)
                    && (opts.sweep_k_unroll || c.k_unroll == default.k_unroll)
                    && (opts.sweep_schedule || c.schedule == default.schedule))
        })
        .filter(|c| opts.sweep_backends || c.backend == default.backend)
        .collect();
    let candidates = match (opts.prefilter, cfg) {
        (true, AnyGemmConfig::Fp32(c)) => prune_dominated_candidates(c, enumerated.clone()),
        (true, AnyGemmConfig::WideningBf16(c)) => {
            prune_dominated_widening_candidates(c, enumerated.clone())
        }
        _ => enumerated.clone(),
    };
    let candidates_pruned = enumerated.len() - candidates.len();
    debug_assert!(candidates.contains(&default));

    let scored: Vec<Result<(PlanCandidate, f64), GemmError>> = candidates
        .par_iter()
        .map(|candidate| {
            let kernel = generate_any_routed(cfg, candidate)?;
            Ok((*candidate, kernel.model_stats().cycles))
        })
        .collect();

    let mut default_cycles = None;
    let mut best: Option<(PlanCandidate, f64)> = None;
    for result in scored {
        let (candidate, cycles) = result?;
        if candidate == default {
            default_cycles = Some(cycles);
        }
        let better = match &best {
            None => true,
            Some((best_candidate, best_cycles)) => {
                cycles < *best_cycles
                    || (cycles == *best_cycles
                        && candidate == default
                        && *best_candidate != default)
            }
        };
        if better {
            best = Some((candidate, cycles));
        }
    }
    let (winner, tuned_cycles) = best.expect("candidate set is never empty");
    let default_cycles = default_cycles.expect("default candidate is always enumerated");
    Ok(TuneOutcome {
        key: tune_key_any(cfg),
        winner,
        tuned_cycles,
        default_cycles,
        candidates_tried: candidates.len(),
        candidates_pruned,
    })
}

/// Tune an FP32 `cfg` and persist the winner into `store`. Returns the
/// outcome.
pub fn tune_into_store(
    cfg: &GemmConfig,
    opts: &TunerOptions,
    store: &mut PlanStore,
) -> Result<TuneOutcome, GemmError> {
    tune_any_into_store(&AnyGemmConfig::Fp32(*cfg), opts, store)
}

/// Tune a configuration of either datatype and persist the winner into
/// `store`. Returns the outcome.
pub fn tune_any_into_store(
    cfg: &AnyGemmConfig,
    opts: &TunerOptions,
    store: &mut PlanStore,
) -> Result<TuneOutcome, GemmError> {
    let outcome = tune_any(cfg, opts)?;
    store.insert_any(cfg, outcome.record());
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_gemm::{BLayout, PlanKind};

    #[test]
    fn tuning_never_loses_to_the_default() {
        for cfg in [
            GemmConfig::abt(32, 32, 16),
            GemmConfig::abt(80, 16, 16),
            GemmConfig::ab(32, 32, 16),
        ] {
            let outcome = tune(&cfg, &TunerOptions::default()).unwrap();
            assert!(
                outcome.tuned_cycles <= outcome.default_cycles,
                "{cfg}: tuned {} > default {}",
                outcome.tuned_cycles,
                outcome.default_cycles
            );
            assert!(outcome.speedup() >= 1.0);
            assert!(outcome.candidates_tried >= 2);
        }
    }

    #[test]
    fn quick_options_restrict_the_sweep() {
        let cfg = GemmConfig::abt(32, 32, 16);
        let quick = tune(&cfg, &TunerOptions::quick()).unwrap();
        // Plan kinds and backends only: the winner keeps the config's knobs.
        assert_eq!(quick.winner.c_transfer, cfg.c_transfer);
        assert_eq!(quick.winner.k_unroll, cfg.k_unroll);
        let full = tune(&cfg, &TunerOptions::default()).unwrap();
        assert!(full.candidates_tried > quick.candidates_tried);
        assert!(full.tuned_cycles <= quick.tuned_cycles);
        // The exhaustive sweep tries everything the pre-filter would prune.
        let exhaustive = tune(&cfg, &TunerOptions::exhaustive()).unwrap();
        assert_eq!(exhaustive.candidates_pruned, 0);
        assert_eq!(
            exhaustive.candidates_tried,
            full.candidates_tried + full.candidates_pruned
        );
    }

    #[test]
    fn prefilter_prunes_without_changing_the_winner_across_a_shape_sweep() {
        // The satellite guarantee: the analytic pre-filter only discards
        // candidates that cannot win, so the pruned tuner and the
        // exhaustive tuner agree on every swept shape.
        let mut total_pruned = 0;
        for cfg in [
            GemmConfig::abt(16, 16, 16),
            GemmConfig::abt(32, 32, 16),
            GemmConfig::abt(48, 48, 32),
            GemmConfig::abt(64, 16, 32),
            GemmConfig::abt(16, 64, 32),
            GemmConfig::abt(64, 64, 64),
            GemmConfig::abt(80, 80, 16),
            GemmConfig::abt(96, 32, 16),
            GemmConfig::ab(48, 48, 16),
        ] {
            let pruned = tune(&cfg, &TunerOptions::default()).unwrap();
            let exhaustive = tune(&cfg, &TunerOptions::exhaustive()).unwrap();
            assert_eq!(
                pruned.winner, exhaustive.winner,
                "{cfg}: pre-filter changed the winner"
            );
            assert_eq!(
                pruned.tuned_cycles, exhaustive.tuned_cycles,
                "{cfg}: pre-filter changed the winning score"
            );
            assert!(pruned.candidates_tried <= exhaustive.candidates_tried);
            total_pruned += pruned.candidates_pruned;
        }
        assert!(
            total_pruned > 0,
            "the sweep must exercise actual pruning, not just agreement"
        );
    }

    #[test]
    fn cross_backend_tuning_finds_the_neon_crossover() {
        // Tiny shape: the ~110-cycle smstart/smstop + ZA-transfer overhead
        // dwarfs the work, so the Neon backend wins the argmin.
        let tiny = GemmConfig::abt(16, 4, 4);
        let outcome = tune(&tiny, &TunerOptions::default()).unwrap();
        assert_eq!(outcome.winner.backend, Backend::Neon);
        assert!(outcome.tuned_cycles < outcome.default_cycles);

        // Large shape: SME saturates its outer-product advantage.
        let large = GemmConfig::abt(64, 64, 64);
        let outcome = tune(&large, &TunerOptions::default()).unwrap();
        assert_eq!(outcome.winner.backend, Backend::Sme);

        // Disabling the backend sweep pins the tuner to SME.
        let sme_only = TunerOptions {
            sweep_backends: false,
            ..TunerOptions::default()
        };
        let outcome = tune(&tiny, &sme_only).unwrap();
        assert_eq!(outcome.winner.backend, Backend::Sme);
    }

    #[test]
    fn pipelined_schedules_win_where_the_model_says_they_do() {
        use sme_gemm::KernelSchedule;
        // Multi-block shape: hoisting the next block's first packed loads
        // above the ZA store removes an exposed RAW stall, so the pipelined
        // twin scores strictly fewer simulated cycles and wins the argmin.
        let cfg = GemmConfig::abt(64, 64, 64);
        let outcome = tune(&cfg, &TunerOptions::default()).unwrap();
        assert_eq!(outcome.winner.schedule, KernelSchedule::Pipelined);
        assert!(outcome.tuned_cycles < outcome.default_cycles);

        // Disabling the schedule sweep pins the tuner to the serial
        // schedule, which can only do worse (or tie).
        let serial_only = TunerOptions {
            sweep_schedule: false,
            ..TunerOptions::default()
        };
        let serial = tune(&cfg, &serial_only).unwrap();
        assert_eq!(serial.winner.schedule, KernelSchedule::Serial);
        assert!(outcome.tuned_cycles <= serial.tuned_cycles);
    }

    #[test]
    fn tall_thin_shapes_prefer_matching_blockings() {
        // A 64×16 output fits one B64x16 accumulator exactly; the
        // heterogeneous default covers it the same way, so the winner must
        // be at least as good and use a plan with a single microkernel.
        let cfg = GemmConfig::abt(64, 16, 32);
        let outcome = tune(&cfg, &TunerOptions::quick()).unwrap();
        let kernel = generate_any_routed(&cfg.into(), &outcome.winner).unwrap();
        let kernel = kernel.as_sme().expect("SME wins this shape in the model");
        assert_eq!(kernel.plan().num_microkernels(), 1);
    }

    #[test]
    fn widening_shapes_tune_across_backends_and_never_lose() {
        use sme_gemm::WideningGemmConfig;
        // On the SME grid the outer-product engine wins and the winner can
        // only improve on the default.
        let dense: AnyGemmConfig = WideningGemmConfig::new(64, 64, 16).unwrap().into();
        let outcome = tune_any(&dense, &TunerOptions::default()).unwrap();
        assert_eq!(outcome.winner.backend, Backend::Sme);
        assert!(outcome.tuned_cycles <= outcome.default_cycles);
        assert!(outcome.candidates_tried >= 2);

        // Off the 32-grid both engines are real candidates now; the winner
        // still can only improve on the (SME) default.
        let thin: AnyGemmConfig = WideningGemmConfig::new(16, 4, 8).unwrap().into();
        let outcome = tune_any(&thin, &TunerOptions::default()).unwrap();
        assert!(outcome.tuned_cycles <= outcome.default_cycles);
        assert!(outcome.candidates_tried >= 2, "SME edge candidates score");

        // A dense-but-misaligned shape: the masked SME edge tiles beat the
        // Neon BFMMLA baseline outright.
        let edgy: AnyGemmConfig = WideningGemmConfig::new(48, 40, 64).unwrap().into();
        let outcome = tune_any(&edgy, &TunerOptions::default()).unwrap();
        assert_eq!(outcome.winner.backend, Backend::Sme);

        // Winners persist under the widening key.
        let mut store = PlanStore::new();
        let outcome = tune_any_into_store(&dense, &TunerOptions::quick(), &mut store).unwrap();
        assert_eq!(store.lookup_any(&dense).copied().unwrap(), outcome.record());
        let reloaded = PlanStore::from_json(&store.to_json()).unwrap();
        assert_eq!(reloaded.lookup_any(&dense).copied(), Some(outcome.record()));
    }

    #[test]
    fn widening_prefilter_prunes_without_changing_the_winner() {
        use sme_gemm::WideningGemmConfig;
        // The widening twin of the FP32 pre-filter guarantee, over shapes
        // with and without masked edges.
        let mut total_pruned = 0;
        for (m, n, k) in [
            (32, 32, 16),
            (64, 16, 32),
            (40, 40, 16),
            (48, 40, 8),
            (16, 4, 8),
        ] {
            let cfg: AnyGemmConfig = WideningGemmConfig::new(m, n, k).unwrap().into();
            let pruned = tune_any(&cfg, &TunerOptions::default()).unwrap();
            let exhaustive = tune_any(&cfg, &TunerOptions::exhaustive()).unwrap();
            assert_eq!(
                pruned.winner, exhaustive.winner,
                "{cfg}: pre-filter changed the winner"
            );
            assert_eq!(pruned.tuned_cycles, exhaustive.tuned_cycles);
            total_pruned += pruned.candidates_pruned;
        }
        assert!(total_pruned > 0, "the sweep must exercise actual pruning");
    }

    #[test]
    fn column_major_tuning_stays_on_the_panel_plan() {
        let cfg = GemmConfig::ab(48, 48, 16);
        let outcome = tune(&cfg, &TunerOptions::default()).unwrap();
        assert_eq!(outcome.winner.kind, PlanKind::ColumnPanels);
        assert_eq!(cfg.b_layout, BLayout::ColMajor);
    }

    #[test]
    fn outcome_round_trips_through_the_store() {
        let cfg = GemmConfig::abt(48, 48, 16);
        let mut store = PlanStore::new();
        let outcome = tune_into_store(&cfg, &TunerOptions::quick(), &mut store).unwrap();
        let record = store.lookup(&cfg).copied().unwrap();
        assert_eq!(record, outcome.record());
        let reloaded = PlanStore::from_json(&store.to_json()).unwrap();
        assert_eq!(reloaded.lookup(&cfg).copied().unwrap(), record);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(tune(&GemmConfig::abt(0, 8, 8), &TunerOptions::quick()).is_err());
    }
}
