//! # sme-runtime
//!
//! The serving layer of the reproduction: **tune once, cache, dispatch**.
//!
//! The paper's generator (like LIBXSMM) produces kernels that are executed
//! many times per time step, so the host-side cost that matters in
//! production is not one generation but the steady state: repeated mixed
//! traffic that should hit pre-compiled, pre-tuned kernels. This crate adds
//! the three pieces the bare generator lacks:
//!
//! * [`KernelCache`] — a sharded, thread-safe, bounded-LRU cache keyed by
//!   **[`AnyGemmConfig`] plus [`Backend`]** (the unified datatype-aware
//!   key: FP32 [`GemmConfig`] or BF16 widening
//!   [`sme_gemm::WideningGemmConfig`]), handing out
//!   `Arc<sme_gemm::RoutedKernel>` on hit and compiling on miss, with
//!   exact hit/miss/eviction counters — plus a [`PackedOperandCache`]
//!   that reuses materialised operand images across dispatches of the
//!   same operands (keyed by operand identity × layout × datatype, with
//!   invalidation wired into the kernel cache's invalidation paths);
//! * [`tuner`] — an autotuner that enumerates the candidate block plans,
//!   ZA-transfer strategies and unroll factors **across both backends and
//!   both datatypes** ([`sme_gemm::enumerate_any_candidates`]), prunes
//!   analytically dominated FP32 plans
//!   ([`sme_gemm::prune_dominated_candidates`]), scores the rest by
//!   simulated cycles on the `sme-machine` timing model, and persists
//!   winners in a versioned, machine-fingerprinted, dtype-tagged
//!   serde-JSON [`PlanStore`] the cache consults before falling back to
//!   the requested backend's default kernel;
//! * [`GemmService`] — a batched front end that accepts mixed-configuration
//!   (and mixed-datatype) request batches, groups them by kernel, fans the
//!   groups out across host threads via `rayon`, and aggregates
//!   [`sme_machine::ExecStats`] per configuration (each
//!   [`ConfigReport`] tagged with its dtype and backend). Routing —
//!   *which engine serves a group* — is delegated:
//!   [`GemmService::dispatch`] follows each shape's tuned winner, and
//!   [`GemmService::dispatch_routed`] takes an explicit per-configuration
//!   decision (the `sme-router` crate's hook).
//!
//! ## Cache → tune → dispatch
//!
//! ```
//! use sme_gemm::GemmConfig;
//! use sme_runtime::{GemmRequest, GemmService, PlanStore, TunerOptions};
//!
//! let service = GemmService::new(32);
//! let cfg = GemmConfig::abt(48, 48, 16);
//!
//! // Dispatch compiles on first sight, then serves every repeat from the
//! // cache — counter-verified.
//! let batch: Vec<GemmRequest> = (0..4)
//!     .map(|seed| GemmRequest::fp32(cfg, seed))
//!     .collect();
//! service.dispatch(&batch).expect("valid batch");
//! service.dispatch(&batch).expect("valid batch");
//! let stats = service.cache().stats();
//! assert_eq!(stats.misses, 1);
//! assert!(stats.hits >= 1);
//!
//! // Autotuning can only improve the modelled cycle count, and the winner
//! // is installed so later dispatches use it.
//! let outcome = service.tune(&cfg, &TunerOptions::quick()).expect("tunable");
//! assert!(outcome.tuned_cycles <= outcome.default_cycles);
//!
//! // Winners persist as a small JSON document…
//! let json = service.cache().export_store().to_json();
//! // …that a later process can load back.
//! let store = PlanStore::from_json(&json).expect("well-formed store");
//! assert!(store.lookup(&cfg).is_some());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod fault;
pub mod pack;
pub mod persist;
pub mod poison;
pub mod service;
pub mod store;
pub mod tuner;

pub use cache::{CacheStats, KernelCache};
pub use error::ServeError;
pub use fault::{
    clear_injector, install_injector, FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultRule,
    SitePattern,
};
pub use pack::{PackLayout, PackStats, PackedOperandCache};
pub use persist::{
    backup_path, load_with_recovery, read_snapshot, save_snapshot, Recovered, SnapshotError,
    SnapshotSource,
};
pub use service::{BatchReport, ConfigReport, GemmRequest, GemmService, RequestFailure};
pub use store::{
    tune_key, tune_key_any, FingerprintCheck, PlanStore, PlanStoreError, RecoveredStore,
    TunedRecord, PLAN_STORE_VERSION,
};
pub use tuner::{tune, tune_any, tune_any_into_store, tune_into_store, TuneOutcome, TunerOptions};

// Re-exported so doc examples and downstream callers can name the config,
// dtype and backend types without adding a direct `sme-gemm` dependency.
pub use sme_gemm::{AnyGemmConfig, Backend, Dtype, GemmConfig, WideningGemmConfig};
