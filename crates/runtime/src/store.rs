//! Persistent store of autotuned plan winners.
//!
//! The tuner is expensive (it generates and timing-simulates every
//! candidate), so winners are worth keeping across runs. A [`PlanStore`]
//! maps a *normalized* [`AnyGemmConfig`] — the datatype family, shape,
//! leading dimensions, layout and accumulation mode, with the tunable
//! code-generation knobs reset — to the winning [`PlanCandidate`] and its
//! scores, and round-trips through a small versioned JSON document (see
//! [`PlanStore::to_json`]).
//!
//! A record never stores the expanded block list: a [`PlanKind`] is enough
//! to re-derive the plan deterministically, which keeps the document tiny
//! and immune to staleness in the block geometry itself.

use serde::Serialize;
use sme_gemm::{
    AnyGemmConfig, BLayout, Backend, Beta, Dtype, GemmConfig, KernelSchedule, PlanCandidate,
    PlanKind, WideningGemmConfig, ZaTransferStrategy,
};
use sme_machine::MachineConfig;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;

/// Version stamp written into the JSON document. Version 4 added the
/// kernel-schedule dimension: entries carry a `schedule` tag (`"Serial"`
/// or `"Pipelined"`; absent means serial, so hand-trimmed documents stay
/// loadable). Version 3 made the datatype a first-class dimension: entries
/// carry a `dtype` tag (`"Fp32"` or `"WideningBf16"`), and widening
/// entries omit the FP32-only fields (`lda`/`ldb`/`ldc`/`b_layout`/
/// `beta`). Version 2 added the per-entry `backend` tag and the optional
/// `machine_fingerprint` stamp. Version-3, -2 and -1 documents still load
/// (their entries are implicitly serial; version-2 and -1 entries are
/// additionally implicitly FP32, and version-1 entries implicitly SME and
/// unstamped).
pub const PLAN_STORE_VERSION: u64 = 4;

/// The tuning result stored for one normalized configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedRecord {
    /// The winning candidate.
    pub candidate: PlanCandidate,
    /// Simulated cycles of the winner.
    pub tuned_cycles: f64,
    /// Simulated cycles of the default (untuned) candidate, kept so that
    /// reports can show the achieved improvement without re-simulating.
    pub default_cycles: f64,
}

impl TunedRecord {
    /// Speed-up of the winner over the default plan (≥ 1 by construction:
    /// the tuner's candidate set always contains the default).
    pub fn speedup(&self) -> f64 {
        if self.tuned_cycles == 0.0 {
            1.0
        } else {
            self.default_cycles / self.tuned_cycles
        }
    }
}

/// Errors reported while loading or parsing a persisted plan store.
#[derive(Debug)]
pub enum PlanStoreError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The document is not valid JSON or not a valid plan store.
    Format(String),
}

impl fmt::Display for PlanStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanStoreError::Io(e) => write!(f, "plan store I/O error: {e}"),
            PlanStoreError::Format(msg) => write!(f, "plan store format error: {msg}"),
        }
    }
}

impl std::error::Error for PlanStoreError {}

impl From<std::io::Error> for PlanStoreError {
    fn from(e: std::io::Error) -> Self {
        PlanStoreError::Io(e)
    }
}

/// The result of comparing a store's machine fingerprint against the
/// current timing model (see [`PlanStore::fingerprint_check`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FingerprintCheck {
    /// The store was tuned on a machine model with identical timing
    /// parameters — its winners are trustworthy.
    Match,
    /// The store carries no fingerprint (version-1 document or built in
    /// memory without [`PlanStore::stamp`]).
    Unstamped,
    /// The store was tuned against different timing parameters; its winners
    /// may be stale.
    Mismatch {
        /// Fingerprint recorded in the store.
        stored: u64,
        /// Fingerprint of the current machine model.
        current: u64,
    },
}

/// In-memory map of tuned winners, keyed by normalized configuration, plus
/// the fingerprint of the machine model the winners were tuned on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanStore {
    entries: HashMap<AnyGemmConfig, TunedRecord>,
    machine_fingerprint: Option<u64>,
}

/// Normalize an FP32 configuration to its tuning key: the tunable knobs
/// (`c_transfer`, `k_unroll`, `schedule`) are reset to fixed values so
/// that requests differing only in those knobs share one tuned winner.
pub fn tune_key(cfg: &GemmConfig) -> GemmConfig {
    cfg.with_c_transfer(ZaTransferStrategy::TwoStep)
        .with_k_unroll(1)
        .with_schedule(KernelSchedule::Serial)
}

/// Normalize a configuration of either datatype to its tuning key (the
/// dtype-generic twin of [`tune_key`]).
pub fn tune_key_any(cfg: &AnyGemmConfig) -> AnyGemmConfig {
    match cfg {
        AnyGemmConfig::Fp32(c) => AnyGemmConfig::Fp32(tune_key(c)),
        AnyGemmConfig::WideningBf16(c) => AnyGemmConfig::WideningBf16(
            c.with_c_transfer(ZaTransferStrategy::TwoStep)
                .with_k_unroll(1),
        ),
    }
}

impl PlanStore {
    /// An empty, unstamped store.
    pub fn new() -> Self {
        PlanStore::default()
    }

    /// An empty store stamped with `machine`'s timing fingerprint.
    pub fn for_machine(machine: &MachineConfig) -> Self {
        let mut store = PlanStore::new();
        store.stamp(machine);
        store
    }

    /// Stamp the store with `machine`'s timing fingerprint, declaring that
    /// its winners were tuned against that model.
    pub fn stamp(&mut self, machine: &MachineConfig) {
        self.machine_fingerprint = Some(machine.fingerprint());
    }

    /// The recorded machine fingerprint, if the store is stamped.
    pub fn machine_fingerprint(&self) -> Option<u64> {
        self.machine_fingerprint
    }

    /// Compare the store's fingerprint against `machine`'s current timing
    /// parameters.
    pub fn fingerprint_check(&self, machine: &MachineConfig) -> FingerprintCheck {
        let current = machine.fingerprint();
        match self.machine_fingerprint {
            None => FingerprintCheck::Unstamped,
            Some(stored) if stored == current => FingerprintCheck::Match,
            Some(stored) => FingerprintCheck::Mismatch { stored, current },
        }
    }

    /// Load a persisted store and validate it against `machine`'s timing
    /// fingerprint.
    ///
    /// On a fingerprint mismatch the stale winners are **discarded** — the
    /// returned store is empty but stamped for `machine`, so callers
    /// re-tune (and re-persist) instead of silently dispatching plans tuned
    /// for a different calibration — and a warning naming both fingerprints
    /// is printed to stderr. Unstamped (version-1) stores load as-is with
    /// [`FingerprintCheck::Unstamped`]; the caller decides whether to trust
    /// them.
    ///
    /// *Corruption* is handled differently from staleness: if the primary
    /// document is unreadable, fails its checksum trailer, or does not
    /// parse, the `.bak` previous generation (kept by every
    /// [`PlanStore::save`]) is tried before giving up, and the original
    /// error is returned only when both generations are bad.
    pub fn load_checked(
        path: impl AsRef<Path>,
        machine: &MachineConfig,
    ) -> Result<(Self, FingerprintCheck), PlanStoreError> {
        let path = path.as_ref();
        let store = match PlanStore::load(path) {
            Ok(store) => store,
            Err(PlanStoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(PlanStoreError::Io(e));
            }
            Err(primary) => match PlanStore::load(crate::persist::backup_path(path)) {
                Ok(previous) => {
                    eprintln!(
                        "warning: plan store {} is corrupt ({primary}); \
                         recovered {} winner(s) from the previous generation",
                        path.display(),
                        previous.len()
                    );
                    previous
                }
                Err(_) => return Err(primary),
            },
        };
        let check = store.fingerprint_check(machine);
        if let FingerprintCheck::Mismatch { stored, current } = check {
            eprintln!(
                "warning: plan store {} was tuned for machine fingerprint \
                 {stored:016x} but the current model is {current:016x}; \
                 discarding its {} stale winner(s) — re-tune and re-save",
                path.display(),
                store.len()
            );
            return Ok((PlanStore::for_machine(machine), check));
        }
        Ok((store, check))
    }

    /// Number of tuned winners.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no winners are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record the winner for an FP32 configuration (normalized internally).
    /// Returns the previous record, if any.
    pub fn insert(&mut self, cfg: &GemmConfig, record: TunedRecord) -> Option<TunedRecord> {
        self.insert_any(&AnyGemmConfig::Fp32(*cfg), record)
    }

    /// Record the winner for a configuration of either datatype
    /// (normalized internally). Returns the previous record, if any.
    pub fn insert_any(&mut self, cfg: &AnyGemmConfig, record: TunedRecord) -> Option<TunedRecord> {
        self.entries.insert(tune_key_any(cfg), record)
    }

    /// Look up the winner for an FP32 configuration (normalized
    /// internally).
    pub fn lookup(&self, cfg: &GemmConfig) -> Option<&TunedRecord> {
        self.lookup_any(&AnyGemmConfig::Fp32(*cfg))
    }

    /// Look up the winner for a configuration of either datatype
    /// (normalized internally).
    pub fn lookup_any(&self, cfg: &AnyGemmConfig) -> Option<&TunedRecord> {
        self.entries.get(&tune_key_any(cfg))
    }

    /// Iterate over `(normalized config, record)` pairs in unspecified
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&AnyGemmConfig, &TunedRecord)> {
        self.entries.iter()
    }

    /// Serialize to the versioned JSON document, with entries sorted by
    /// datatype then shape so the output is deterministic. The machine
    /// fingerprint, when stamped, is written as a 16-digit hex string (JSON
    /// numbers cannot carry 64 bits losslessly). Widening entries write
    /// `null` for the FP32-only fields.
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct Entry {
            dtype: String,
            m: usize,
            n: usize,
            k: usize,
            lda: Option<usize>,
            ldb: Option<usize>,
            ldc: Option<usize>,
            b_layout: Option<BLayout>,
            beta: Option<Beta>,
            backend: String,
            plan: String,
            c_transfer: ZaTransferStrategy,
            k_unroll: usize,
            schedule: String,
            tuned_cycles: f64,
            default_cycles: f64,
        }
        #[derive(Serialize)]
        struct Doc {
            version: u64,
            machine_fingerprint: Option<String>,
            entries: Vec<Entry>,
        }
        let mut pairs: Vec<(&AnyGemmConfig, &TunedRecord)> = self.entries.iter().collect();
        pairs.sort_by_key(|(c, _)| c.ordering_key());
        let doc = Doc {
            version: PLAN_STORE_VERSION,
            machine_fingerprint: self.machine_fingerprint.map(|fp| format!("{fp:016x}")),
            entries: pairs
                .into_iter()
                .map(|(any, r)| {
                    let base = Entry {
                        dtype: any.dtype().name().to_string(),
                        m: any.m(),
                        n: any.n(),
                        k: any.k(),
                        lda: None,
                        ldb: None,
                        ldc: None,
                        b_layout: None,
                        beta: None,
                        backend: r.candidate.backend.name().to_string(),
                        plan: r.candidate.kind.name().to_string(),
                        c_transfer: r.candidate.c_transfer,
                        k_unroll: r.candidate.k_unroll,
                        schedule: r.candidate.schedule.name().to_string(),
                        tuned_cycles: r.tuned_cycles,
                        default_cycles: r.default_cycles,
                    };
                    match any {
                        AnyGemmConfig::Fp32(c) => Entry {
                            lda: Some(c.lda),
                            ldb: Some(c.ldb),
                            ldc: Some(c.ldc),
                            b_layout: Some(c.b_layout),
                            beta: Some(c.beta),
                            ..base
                        },
                        AnyGemmConfig::WideningBf16(_) => base,
                    }
                })
                .collect(),
        };
        serde_json::to_string_pretty(&doc).expect("shim serialization is total")
    }

    /// Parse a document produced by [`PlanStore::to_json`] (or by the
    /// version-1/-2 formats, whose entries are implicitly FP32).
    pub fn from_json(text: &str) -> Result<Self, PlanStoreError> {
        let fail = |msg: &str| PlanStoreError::Format(msg.to_string());
        let doc = serde_json::from_str(text)
            .map_err(|e| PlanStoreError::Format(format!("invalid JSON: {e}")))?;
        let version = match doc.get("version").and_then(|v| v.as_u64()) {
            Some(v @ (1 | 2 | 3 | PLAN_STORE_VERSION)) => v,
            Some(other) => {
                return Err(PlanStoreError::Format(format!(
                    "unsupported plan store version {other} (expected {PLAN_STORE_VERSION})"
                )))
            }
            None => return Err(fail("missing `version` field")),
        };
        let machine_fingerprint = match doc.get("machine_fingerprint") {
            None | Some(serde_json::Value::Null) => None,
            Some(v) => {
                let hex = v
                    .as_str()
                    .ok_or_else(|| fail("`machine_fingerprint` must be a hex string"))?;
                Some(
                    u64::from_str_radix(hex, 16)
                        .map_err(|_| fail(&format!("invalid machine fingerprint `{hex}`")))?,
                )
            }
        };
        let entries = doc
            .get("entries")
            .and_then(|v| v.as_array())
            .ok_or_else(|| fail("missing `entries` array"))?;
        let mut store = PlanStore::new();
        for entry in entries {
            let dim = |name: &str| -> Result<usize, PlanStoreError> {
                entry
                    .get(name)
                    .and_then(|v| v.as_u64())
                    .map(|v| v as usize)
                    .ok_or_else(|| fail(&format!("entry missing integer field `{name}`")))
            };
            let text_field = |name: &str| -> Result<&str, PlanStoreError> {
                entry
                    .get(name)
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| fail(&format!("entry missing string field `{name}`")))
            };
            let cycles = |name: &str| -> Result<f64, PlanStoreError> {
                entry
                    .get(name)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| fail(&format!("entry missing number field `{name}`")))
            };
            // Versions 1 and 2 predate the datatype dimension: every entry
            // is an FP32 winner.
            let dtype = if version < 3 {
                Dtype::Fp32
            } else {
                let name = text_field("dtype")?;
                Dtype::from_name(name).ok_or_else(|| fail(&format!("unknown dtype `{name}`")))?
            };
            let c_transfer = match text_field("c_transfer")? {
                "Direct" => ZaTransferStrategy::Direct,
                "TwoStep" => ZaTransferStrategy::TwoStep,
                other => return Err(fail(&format!("unknown c_transfer `{other}`"))),
            };
            let plan_name = text_field("plan")?;
            let kind = PlanKind::from_name(plan_name)
                .ok_or_else(|| fail(&format!("unknown plan kind `{plan_name}`")))?;
            // Version-1 documents predate multi-backend dispatch: every
            // entry is an SME winner.
            let backend = if version == 1 {
                Backend::Sme
            } else {
                let name = text_field("backend")?;
                Backend::from_name(name)
                    .ok_or_else(|| fail(&format!("unknown backend `{name}`")))?
            };
            let k_unroll = dim("k_unroll")?;
            if !matches!(k_unroll, 1 | 2 | 4) {
                return Err(fail(&format!(
                    "invalid stored k_unroll {k_unroll} (supported: 1, 2, 4)"
                )));
            }
            // Versions 1–3 predate the schedule dimension; an absent tag in
            // a v4 document also means serial, so trimmed documents load.
            let schedule = match entry.get("schedule") {
                None | Some(serde_json::Value::Null) => KernelSchedule::Serial,
                Some(v) => {
                    let name = v
                        .as_str()
                        .ok_or_else(|| fail("`schedule` must be a string"))?;
                    KernelSchedule::from_name(name)
                        .ok_or_else(|| fail(&format!("unknown schedule `{name}`")))?
                }
            };
            let key = match dtype {
                Dtype::Fp32 => {
                    let b_layout = match text_field("b_layout")? {
                        "RowMajor" => BLayout::RowMajor,
                        "ColMajor" => BLayout::ColMajor,
                        other => return Err(fail(&format!("unknown b_layout `{other}`"))),
                    };
                    let beta = match text_field("beta")? {
                        "Zero" => Beta::Zero,
                        "One" => Beta::One,
                        other => return Err(fail(&format!("unknown beta `{other}`"))),
                    };
                    let key = GemmConfig {
                        m: dim("m")?,
                        n: dim("n")?,
                        k: dim("k")?,
                        lda: dim("lda")?,
                        ldb: dim("ldb")?,
                        ldc: dim("ldc")?,
                        b_layout,
                        beta,
                        c_transfer: ZaTransferStrategy::TwoStep,
                        k_unroll: 1,
                        schedule: KernelSchedule::Serial,
                    };
                    key.validate()
                        .map_err(|e| fail(&format!("invalid stored configuration: {e}")))?;
                    if b_layout == BLayout::ColMajor && kind != PlanKind::ColumnPanels {
                        return Err(fail(&format!(
                            "plan kind `{plan_name}` is incompatible with column-major B \
                             (only ColumnPanels is)"
                        )));
                    }
                    // A Neon winner must describe a shape the Neon generator
                    // can actually compile, or every request for it would
                    // fall back at dispatch time.
                    if backend == Backend::Neon {
                        sme_gemm::neon_supports(&key).map_err(|e| {
                            fail(&format!("stored Neon winner is not Neon-compilable: {e}"))
                        })?;
                    }
                    AnyGemmConfig::Fp32(key)
                }
                Dtype::WideningBf16 => {
                    let key = WideningGemmConfig::new(dim("m")?, dim("n")?, dim("k")?)
                        .map_err(|e| fail(&format!("invalid stored configuration: {e}")))?;
                    // Validate the candidate against the widening
                    // generators' grids, mirroring the FP32 checks above.
                    match backend {
                        Backend::Sme => {
                            sme_gemm::sme_widening_supports(&key).map_err(|e| {
                                fail(&format!("stored SME widening winner off the grid: {e}"))
                            })?;
                            // Edge tiles are predicated, so any homogeneous
                            // or heterogeneous plan compiles; only the
                            // column-panel kind (meaningless for the
                            // pre-packed operands) is rejected.
                            match kind {
                                PlanKind::Homogeneous(_) | PlanKind::Heterogeneous => {}
                                _ => {
                                    return Err(fail(&format!(
                                        "plan kind `{plan_name}` is incompatible with the \
                                         widening generator"
                                    )))
                                }
                            }
                        }
                        Backend::Neon => {
                            sme_gemm::neon_widening_supports(&key).map_err(|e| {
                                fail(&format!(
                                    "stored Neon widening winner is not compilable: {e}"
                                ))
                            })?;
                        }
                    }
                    AnyGemmConfig::WideningBf16(key)
                }
            };
            let record = TunedRecord {
                candidate: PlanCandidate {
                    backend,
                    kind,
                    c_transfer,
                    k_unroll,
                    schedule,
                },
                tuned_cycles: cycles("tuned_cycles")?,
                default_cycles: cycles("default_cycles")?,
            };
            store.entries.insert(key, record);
        }
        store.machine_fingerprint = machine_fingerprint;
        Ok(store)
    }

    /// Write the JSON document to a file — atomically (temp + fsync +
    /// rename), with a checksum trailer, keeping the previous generation at
    /// `<path>.bak` (see [`crate::persist::save_snapshot`]).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PlanStoreError> {
        crate::persist::save_snapshot(path.as_ref(), &self.to_json())?;
        Ok(())
    }

    /// Load a store previously written with [`PlanStore::save`]. The
    /// checksum trailer is verified when present; trailer-less legacy
    /// documents still load.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PlanStoreError> {
        match crate::persist::read_snapshot(path.as_ref()) {
            Ok(text) => PlanStore::from_json(&text),
            Err(crate::persist::SnapshotError::Io(e)) => Err(PlanStoreError::Io(e)),
            Err(crate::persist::SnapshotError::Corrupt(msg)) => Err(PlanStoreError::Format(msg)),
        }
    }

    /// Load with the full degradation ladder: primary generation → `.bak`
    /// previous generation → empty, applying the fingerprint staleness
    /// check to whichever generation served.
    ///
    /// Unlike [`PlanStore::load_checked`] this never fails: *corruption*
    /// (torn writes, bit-flips, unparseable JSON, injected I/O faults)
    /// recovers from the previous generation, *staleness* (fingerprint
    /// mismatch) discards to an empty re-stamped store, and a missing file
    /// is a fresh start. The [`RecoveredStore`] says which rung served.
    pub fn load_recovered(path: impl AsRef<Path>, machine: &MachineConfig) -> RecoveredStore {
        let path = path.as_ref();
        let recovered = crate::persist::load_with_recovery(path, |text| PlanStore::from_json(text));
        let source = recovered.source;
        let detail = recovered.detail;
        if let Some(d) = detail.as_deref() {
            eprintln!("warning: plan store {}: {d}", path.display());
        }
        match recovered.value {
            Some(store) => {
                let check = store.fingerprint_check(machine);
                if let FingerprintCheck::Mismatch { stored, current } = check {
                    eprintln!(
                        "warning: plan store {} was tuned for machine fingerprint \
                         {stored:016x} but the current model is {current:016x}; \
                         discarding its {} stale winner(s) — re-tune and re-save",
                        path.display(),
                        store.len()
                    );
                    return RecoveredStore {
                        store: PlanStore::for_machine(machine),
                        check,
                        source,
                        detail,
                    };
                }
                RecoveredStore {
                    store,
                    check,
                    source,
                    detail,
                }
            }
            None => RecoveredStore {
                store: PlanStore::for_machine(machine),
                check: FingerprintCheck::Match,
                source,
                detail,
            },
        }
    }
}

/// The outcome of [`PlanStore::load_recovered`]: the store that will serve,
/// its fingerprint verdict, and which on-disk generation it came from.
#[derive(Debug)]
pub struct RecoveredStore {
    /// The store to serve from (possibly empty).
    pub store: PlanStore,
    /// Fingerprint verdict for the generation that served.
    pub check: FingerprintCheck,
    /// Which generation served.
    pub source: crate::persist::SnapshotSource,
    /// Why the primary (and possibly backup) generation was rejected.
    pub detail: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_gemm::RegisterBlocking;

    fn sample_record(kind: PlanKind) -> TunedRecord {
        TunedRecord {
            candidate: PlanCandidate {
                backend: Backend::Sme,
                kind,
                c_transfer: ZaTransferStrategy::Direct,
                k_unroll: 2,
                schedule: KernelSchedule::Pipelined,
            },
            tuned_cycles: 1200.5,
            default_cycles: 1500.25,
        }
    }

    fn widening_record() -> TunedRecord {
        TunedRecord {
            candidate: PlanCandidate {
                backend: Backend::Sme,
                kind: PlanKind::Homogeneous(RegisterBlocking::B32x32),
                c_transfer: ZaTransferStrategy::TwoStep,
                k_unroll: 2,
                schedule: KernelSchedule::Serial,
            },
            tuned_cycles: 800.0,
            default_cycles: 900.0,
        }
    }

    #[test]
    fn lookup_is_knob_insensitive() {
        let mut store = PlanStore::new();
        let cfg = GemmConfig::abt(64, 48, 32);
        store.insert(&cfg, sample_record(PlanKind::Heterogeneous));
        // A request differing only in the tunable knobs hits the same record.
        let variant = cfg
            .with_c_transfer(ZaTransferStrategy::Direct)
            .with_k_unroll(4);
        assert!(store.lookup(&variant).is_some());
        // A different shape does not.
        assert!(store.lookup(&GemmConfig::abt(64, 48, 33)).is_none());
        // The same is true across the widening family.
        let wide = WideningGemmConfig::new(32, 32, 8).unwrap();
        store.insert_any(&wide.into(), widening_record());
        let variant: AnyGemmConfig = wide
            .with_c_transfer(ZaTransferStrategy::Direct)
            .with_k_unroll(4)
            .into();
        assert!(store.lookup_any(&variant).is_some());
        // Dtypes never alias: the FP32 record for the same shape is
        // separate.
        let fp32_same_shape: AnyGemmConfig = GemmConfig::abt(32, 32, 8).into();
        assert!(store.lookup_any(&fp32_same_shape).is_none());
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let mut store = PlanStore::new();
        store.insert(
            &GemmConfig::abt(80, 80, 512),
            sample_record(PlanKind::Homogeneous(RegisterBlocking::B16x64)),
        );
        store.insert(
            &GemmConfig::ab(33, 47, 64).with_leading_dims(40, 64, 40),
            sample_record(PlanKind::ColumnPanels),
        );
        let json = store.to_json();
        let parsed = PlanStore::from_json(&json).unwrap();
        assert_eq!(parsed, store);
        assert_eq!(parsed.len(), 2);
        let rec = parsed.lookup(&GemmConfig::abt(80, 80, 512)).unwrap();
        assert_eq!(
            rec.candidate.kind,
            PlanKind::Homogeneous(RegisterBlocking::B16x64)
        );
        assert_eq!(rec.candidate.k_unroll, 2);
        assert_eq!(rec.tuned_cycles, 1200.5);
        assert!((rec.speedup() - 1500.25 / 1200.5).abs() < 1e-12);
    }

    #[test]
    fn mixed_v3_documents_round_trip_with_dtype_tags() {
        // The v3 migration satellite: a store carrying both datatype
        // families serializes with dtype tags and reloads identically.
        let mut store = PlanStore::new();
        store.insert(
            &GemmConfig::abt(64, 64, 32),
            sample_record(PlanKind::Heterogeneous),
        );
        let wide = WideningGemmConfig::new(64, 32, 8).unwrap();
        store.insert_any(&wide.into(), widening_record());
        let neon_wide = WideningGemmConfig::new(16, 4, 4).unwrap();
        store.insert_any(
            &neon_wide.into(),
            TunedRecord {
                candidate: PlanCandidate {
                    backend: Backend::Neon,
                    kind: PlanKind::Homogeneous(RegisterBlocking::B32x32),
                    c_transfer: ZaTransferStrategy::TwoStep,
                    k_unroll: 1,
                    schedule: KernelSchedule::Serial,
                },
                tuned_cycles: 50.0,
                default_cycles: 50.0,
            },
        );
        let json = store.to_json();
        assert!(json.contains("\"version\": 4"));
        assert!(json.contains("\"dtype\": \"Fp32\""));
        assert!(json.contains("\"dtype\": \"WideningBf16\""));
        // Widening entries have no FP32 layout fields.
        assert!(json.contains("\"lda\": null"));
        let parsed = PlanStore::from_json(&json).unwrap();
        assert_eq!(parsed, store);
        let rec = parsed.lookup_any(&wide.into()).unwrap();
        assert_eq!(rec.candidate.backend, Backend::Sme);
        assert_eq!(
            rec.candidate.kind,
            PlanKind::Homogeneous(RegisterBlocking::B32x32)
        );
        assert_eq!(
            parsed
                .lookup_any(&neon_wide.into())
                .unwrap()
                .candidate
                .backend,
            Backend::Neon
        );
    }

    #[test]
    fn version_two_documents_load_as_fp32() {
        // The v2 migration satellite: a pre-dtype document loads, its
        // entries implicitly FP32, and its winners are honoured.
        let v2 = r#"{"version": 2, "entries": [{"m": 48, "n": 48, "k": 16, "lda": 48,
            "ldb": 48, "ldc": 48, "b_layout": "RowMajor", "beta": "One",
            "backend": "Sme", "plan": "Homogeneous16x64", "c_transfer": "Direct",
            "k_unroll": 2, "tuned_cycles": 100, "default_cycles": 150}]}"#;
        let store = PlanStore::from_json(v2).unwrap();
        assert_eq!(store.len(), 1);
        let rec = store.lookup(&GemmConfig::abt(48, 48, 16)).unwrap();
        assert_eq!(rec.candidate.backend, Backend::Sme);
        assert_eq!(
            rec.candidate.kind,
            PlanKind::Homogeneous(RegisterBlocking::B16x64)
        );
        assert_eq!(rec.candidate.c_transfer, ZaTransferStrategy::Direct);
        // Re-serializing upgrades the document to v4 with an explicit tag.
        let upgraded = store.to_json();
        assert!(upgraded.contains("\"version\": 4"));
        assert!(upgraded.contains("\"dtype\": \"Fp32\""));
        assert_eq!(PlanStore::from_json(&upgraded).unwrap(), store);
    }

    #[test]
    fn serialized_output_is_deterministic_and_versioned() {
        let mut store = PlanStore::new();
        for mn in [96, 32, 64] {
            store.insert(
                &GemmConfig::abt(mn, mn, 16),
                sample_record(PlanKind::Heterogeneous),
            );
        }
        store.insert_any(
            &WideningGemmConfig::new(32, 32, 8).unwrap().into(),
            widening_record(),
        );
        let a = store.to_json();
        let b = store.clone().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"version\": 4"));
        // Sorted by dtype then shape: 32 before 64 before 96, widening last.
        let p32 = a.find("\"m\": 32").unwrap();
        let p64 = a.find("\"m\": 64").unwrap();
        let p96 = a.find("\"m\": 96").unwrap();
        let pwide = a.find("WideningBf16").unwrap();
        assert!(p32 < p64 && p64 < p96 && p96 < pwide);
    }

    #[test]
    fn malformed_documents_are_rejected_with_context() {
        let cases = [
            ("not json", "invalid JSON"),
            ("{}", "version"),
            (r#"{"version": 5, "entries": []}"#, "version 5"),
            (r#"{"version": 1}"#, "entries"),
            (r#"{"version": 1, "entries": [{}]}"#, "missing"),
            (
                r#"{"version": 2, "machine_fingerprint": "xyz", "entries": []}"#,
                "machine fingerprint",
            ),
            (
                // A non-string, non-null fingerprint is corruption, not
                // "unstamped" — treating it as absent would silently keep
                // winners from an unknown calibration.
                r#"{"version": 2, "machine_fingerprint": true, "entries": []}"#,
                "hex string",
            ),
            (
                // Version 3 requires the dtype tag.
                r#"{"version": 3, "entries": [{"m": 8, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "RowMajor", "beta": "One", "backend": "Sme",
                   "plan": "Heterogeneous", "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "dtype",
            ),
            (
                r#"{"version": 3, "entries": [{"dtype": "Fp16", "m": 8, "n": 8, "k": 8,
                   "lda": 8, "ldb": 8, "ldc": 8, "b_layout": "RowMajor", "beta": "One",
                   "backend": "Sme", "plan": "Heterogeneous", "c_transfer": "TwoStep",
                   "k_unroll": 1, "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "unknown dtype",
            ),
            (
                r#"{"version": 2, "entries": [{"m": 8, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "RowMajor", "beta": "One", "plan": "Heterogeneous",
                   "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "backend",
            ),
            (
                r#"{"version": 2, "entries": [{"m": 8, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "RowMajor", "beta": "One", "backend": "Sve",
                   "plan": "Heterogeneous", "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "unknown backend",
            ),
            (
                // A Neon winner for column-major B can never dispatch (the
                // Neon generator is row-major-B only).
                r#"{"version": 2, "entries": [{"m": 8, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "ColMajor", "beta": "One", "backend": "Neon",
                   "plan": "ColumnPanels", "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "Neon-compilable",
            ),
            (
                // A bogus schedule tag is corruption, not serial.
                r#"{"version": 4, "entries": [{"dtype": "Fp32", "m": 8, "n": 8, "k": 8,
                   "lda": 8, "ldb": 8, "ldc": 8, "b_layout": "RowMajor", "beta": "One",
                   "backend": "Sme", "plan": "Heterogeneous", "c_transfer": "TwoStep",
                   "k_unroll": 1, "schedule": "Overlapped",
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "unknown schedule",
            ),
            (
                // An odd k is off the widening envelope grid entirely.
                r#"{"version": 3, "entries": [{"dtype": "WideningBf16", "m": 24, "n": 32,
                   "k": 7, "backend": "Sme", "plan": "Homogeneous32x32",
                   "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "invalid stored configuration",
            ),
            (
                // The column-panel kind never drives the widening
                // generator (the pre-packed operands have no column-major
                // panels to transpose).
                r#"{"version": 3, "entries": [{"dtype": "WideningBf16", "m": 32, "n": 32,
                   "k": 8, "backend": "Sme", "plan": "ColumnPanels",
                   "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "incompatible with the widening generator",
            ),
            (
                // m = 12 is off even the widening envelope grid.
                r#"{"version": 3, "entries": [{"dtype": "WideningBf16", "m": 12, "n": 32,
                   "k": 8, "backend": "Neon", "plan": "Homogeneous32x32",
                   "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "invalid stored configuration",
            ),
            (
                r#"{"version": 1, "entries": [{"m": 8, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "Diagonal", "beta": "One", "plan": "Heterogeneous",
                   "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "b_layout",
            ),
            (
                r#"{"version": 1, "entries": [{"m": 8, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "RowMajor", "beta": "One", "plan": "NoSuchPlan",
                   "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "plan kind",
            ),
            (
                r#"{"version": 1, "entries": [{"m": 0, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "RowMajor", "beta": "One", "plan": "Heterogeneous",
                   "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "invalid stored configuration",
            ),
            (
                r#"{"version": 1, "entries": [{"m": 8, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "RowMajor", "beta": "One", "plan": "Heterogeneous",
                   "c_transfer": "TwoStep", "k_unroll": 3,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "k_unroll 3",
            ),
            (
                r#"{"version": 1, "entries": [{"m": 8, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "ColMajor", "beta": "One", "plan": "Heterogeneous",
                   "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "incompatible with column-major",
            ),
        ];
        for (text, needle) in cases {
            match PlanStore::from_json(text) {
                Err(PlanStoreError::Format(msg)) => {
                    assert!(msg.contains(needle), "{needle:?} not in {msg:?}")
                }
                other => panic!("expected Format error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn version_one_documents_load_as_unstamped_sme() {
        let v1 = r#"{"version": 1, "entries": [{"m": 48, "n": 48, "k": 16, "lda": 48,
            "ldb": 48, "ldc": 48, "b_layout": "RowMajor", "beta": "One",
            "plan": "Homogeneous16x64", "c_transfer": "Direct", "k_unroll": 2,
            "tuned_cycles": 100, "default_cycles": 150}]}"#;
        let store = PlanStore::from_json(v1).unwrap();
        assert_eq!(store.machine_fingerprint(), None);
        let rec = store.lookup(&GemmConfig::abt(48, 48, 16)).unwrap();
        assert_eq!(rec.candidate.backend, Backend::Sme);
        assert_eq!(
            rec.candidate.kind,
            PlanKind::Homogeneous(RegisterBlocking::B16x64)
        );
    }

    #[test]
    fn fingerprint_round_trips_and_detects_recalibration() {
        use sme_machine::MachineConfig;
        let machine = MachineConfig::apple_m4();
        let mut store = PlanStore::for_machine(&machine);
        store.insert(
            &GemmConfig::abt(32, 32, 16),
            sample_record(PlanKind::Heterogeneous),
        );
        assert_eq!(store.fingerprint_check(&machine), FingerprintCheck::Match);

        let json = store.to_json();
        assert!(json.contains("machine_fingerprint"));
        let reloaded = PlanStore::from_json(&json).unwrap();
        assert_eq!(reloaded, store);
        assert_eq!(
            reloaded.machine_fingerprint(),
            Some(machine.fingerprint()),
            "fingerprint survives the JSON round trip"
        );

        // A recalibrated machine model is detected as a mismatch.
        let mut recalibrated = MachineConfig::apple_m4();
        recalibrated.p_core.clock_ghz = 4.0;
        assert!(matches!(
            reloaded.fingerprint_check(&recalibrated),
            FingerprintCheck::Mismatch { .. }
        ));
        // An unstamped store is reported as such, not as a mismatch.
        assert_eq!(
            PlanStore::new().fingerprint_check(&machine),
            FingerprintCheck::Unstamped
        );
    }

    #[test]
    fn load_checked_discards_stale_winners() {
        use sme_machine::MachineConfig;
        let machine = MachineConfig::apple_m4();
        let mut store = PlanStore::for_machine(&machine);
        let cfg = GemmConfig::abt(64, 64, 32);
        store.insert(&cfg, sample_record(PlanKind::Heterogeneous));
        // A widening winner goes stale with the rest of the store.
        store.insert_any(
            &WideningGemmConfig::new(32, 32, 8).unwrap().into(),
            widening_record(),
        );
        let path = std::env::temp_dir().join("sme_runtime_fingerprint_test.json");
        store.save(&path).unwrap();

        // Same machine: winners survive.
        let (same, check) = PlanStore::load_checked(&path, &machine).unwrap();
        assert_eq!(check, FingerprintCheck::Match);
        assert!(same.lookup(&cfg).is_some());

        // Different timing calibration: winners are dropped and the store
        // comes back stamped for the *current* machine, ready to re-tune.
        let mut recalibrated = MachineConfig::apple_m4();
        recalibrated.multicore.sme_units = 1;
        let (retune, check) = PlanStore::load_checked(&path, &recalibrated).unwrap();
        assert!(matches!(check, FingerprintCheck::Mismatch { .. }));
        assert!(retune.is_empty(), "stale winners must not be dispatched");
        assert_eq!(
            retune.machine_fingerprint(),
            Some(recalibrated.fingerprint())
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let mut store = PlanStore::new();
        store.insert(
            &GemmConfig::abt(48, 48, 48),
            sample_record(PlanKind::Heterogeneous),
        );
        let path = std::env::temp_dir().join("sme_runtime_plan_store_test.json");
        store.save(&path).unwrap();
        let loaded = PlanStore::load(&path).unwrap();
        assert_eq!(loaded, store);
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            PlanStore::load("/nonexistent/plan/store.json"),
            Err(PlanStoreError::Io(_))
        ));
    }
}
