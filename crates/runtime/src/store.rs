//! Persistent store of autotuned plan winners.
//!
//! The tuner is expensive (it generates and timing-simulates every
//! candidate), so winners are worth keeping across runs. A [`PlanStore`]
//! maps a *normalized* [`GemmConfig`] — the shape, leading dimensions,
//! layout and accumulation mode, with the tunable code-generation knobs
//! reset — to the winning [`PlanCandidate`] and its scores, and round-trips
//! through a small versioned JSON document (see [`PlanStore::to_json`]).
//!
//! A record never stores the expanded block list: a [`PlanKind`] is enough
//! to re-derive the plan deterministically, which keeps the document tiny
//! and immune to staleness in the block geometry itself.

use serde::Serialize;
use sme_gemm::{BLayout, Beta, GemmConfig, PlanCandidate, PlanKind, ZaTransferStrategy};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;

/// Version stamp written into (and required from) the JSON document.
pub const PLAN_STORE_VERSION: u64 = 1;

/// The tuning result stored for one normalized configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedRecord {
    /// The winning candidate.
    pub candidate: PlanCandidate,
    /// Simulated cycles of the winner.
    pub tuned_cycles: f64,
    /// Simulated cycles of the default (untuned) candidate, kept so that
    /// reports can show the achieved improvement without re-simulating.
    pub default_cycles: f64,
}

impl TunedRecord {
    /// Speed-up of the winner over the default plan (≥ 1 by construction:
    /// the tuner's candidate set always contains the default).
    pub fn speedup(&self) -> f64 {
        if self.tuned_cycles == 0.0 {
            1.0
        } else {
            self.default_cycles / self.tuned_cycles
        }
    }
}

/// Errors reported while loading or parsing a persisted plan store.
#[derive(Debug)]
pub enum PlanStoreError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The document is not valid JSON or not a valid plan store.
    Format(String),
}

impl fmt::Display for PlanStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanStoreError::Io(e) => write!(f, "plan store I/O error: {e}"),
            PlanStoreError::Format(msg) => write!(f, "plan store format error: {msg}"),
        }
    }
}

impl std::error::Error for PlanStoreError {}

impl From<std::io::Error> for PlanStoreError {
    fn from(e: std::io::Error) -> Self {
        PlanStoreError::Io(e)
    }
}

/// In-memory map of tuned winners, keyed by normalized configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanStore {
    entries: HashMap<GemmConfig, TunedRecord>,
}

/// Normalize a configuration to its tuning key: the tunable knobs
/// (`c_transfer`, `k_unroll`) are reset to fixed values so that requests
/// differing only in those knobs share one tuned winner.
pub fn tune_key(cfg: &GemmConfig) -> GemmConfig {
    cfg.with_c_transfer(ZaTransferStrategy::TwoStep)
        .with_k_unroll(1)
}

impl PlanStore {
    /// An empty store.
    pub fn new() -> Self {
        PlanStore::default()
    }

    /// Number of tuned winners.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no winners are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record the winner for `cfg` (normalized internally). Returns the
    /// previous record, if any.
    pub fn insert(&mut self, cfg: &GemmConfig, record: TunedRecord) -> Option<TunedRecord> {
        self.entries.insert(tune_key(cfg), record)
    }

    /// Look up the winner for `cfg` (normalized internally).
    pub fn lookup(&self, cfg: &GemmConfig) -> Option<&TunedRecord> {
        self.entries.get(&tune_key(cfg))
    }

    /// Iterate over `(normalized config, record)` pairs in unspecified
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&GemmConfig, &TunedRecord)> {
        self.entries.iter()
    }

    /// Serialize to the versioned JSON document, with entries sorted by
    /// shape so the output is deterministic.
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct Entry {
            m: usize,
            n: usize,
            k: usize,
            lda: usize,
            ldb: usize,
            ldc: usize,
            b_layout: BLayout,
            beta: Beta,
            plan: String,
            c_transfer: ZaTransferStrategy,
            k_unroll: usize,
            tuned_cycles: f64,
            default_cycles: f64,
        }
        #[derive(Serialize)]
        struct Doc {
            version: u64,
            entries: Vec<Entry>,
        }
        let mut pairs: Vec<(&GemmConfig, &TunedRecord)> = self.entries.iter().collect();
        pairs.sort_by_key(|(c, _)| {
            (
                c.m,
                c.n,
                c.k,
                c.lda,
                c.ldb,
                c.ldc,
                c.b_layout == BLayout::ColMajor,
                c.beta == Beta::One,
            )
        });
        let doc = Doc {
            version: PLAN_STORE_VERSION,
            entries: pairs
                .into_iter()
                .map(|(c, r)| Entry {
                    m: c.m,
                    n: c.n,
                    k: c.k,
                    lda: c.lda,
                    ldb: c.ldb,
                    ldc: c.ldc,
                    b_layout: c.b_layout,
                    beta: c.beta,
                    plan: r.candidate.kind.name().to_string(),
                    c_transfer: r.candidate.c_transfer,
                    k_unroll: r.candidate.k_unroll,
                    tuned_cycles: r.tuned_cycles,
                    default_cycles: r.default_cycles,
                })
                .collect(),
        };
        serde_json::to_string_pretty(&doc).expect("shim serialization is total")
    }

    /// Parse a document produced by [`PlanStore::to_json`].
    pub fn from_json(text: &str) -> Result<Self, PlanStoreError> {
        let fail = |msg: &str| PlanStoreError::Format(msg.to_string());
        let doc = serde_json::from_str(text)
            .map_err(|e| PlanStoreError::Format(format!("invalid JSON: {e}")))?;
        match doc.get("version").and_then(|v| v.as_u64()) {
            Some(PLAN_STORE_VERSION) => {}
            Some(other) => {
                return Err(PlanStoreError::Format(format!(
                    "unsupported plan store version {other} (expected {PLAN_STORE_VERSION})"
                )))
            }
            None => return Err(fail("missing `version` field")),
        }
        let entries = doc
            .get("entries")
            .and_then(|v| v.as_array())
            .ok_or_else(|| fail("missing `entries` array"))?;
        let mut store = PlanStore::new();
        for entry in entries {
            let dim = |name: &str| -> Result<usize, PlanStoreError> {
                entry
                    .get(name)
                    .and_then(|v| v.as_u64())
                    .map(|v| v as usize)
                    .ok_or_else(|| fail(&format!("entry missing integer field `{name}`")))
            };
            let text_field = |name: &str| -> Result<&str, PlanStoreError> {
                entry
                    .get(name)
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| fail(&format!("entry missing string field `{name}`")))
            };
            let cycles = |name: &str| -> Result<f64, PlanStoreError> {
                entry
                    .get(name)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| fail(&format!("entry missing number field `{name}`")))
            };
            let b_layout = match text_field("b_layout")? {
                "RowMajor" => BLayout::RowMajor,
                "ColMajor" => BLayout::ColMajor,
                other => return Err(fail(&format!("unknown b_layout `{other}`"))),
            };
            let beta = match text_field("beta")? {
                "Zero" => Beta::Zero,
                "One" => Beta::One,
                other => return Err(fail(&format!("unknown beta `{other}`"))),
            };
            let c_transfer = match text_field("c_transfer")? {
                "Direct" => ZaTransferStrategy::Direct,
                "TwoStep" => ZaTransferStrategy::TwoStep,
                other => return Err(fail(&format!("unknown c_transfer `{other}`"))),
            };
            let plan_name = text_field("plan")?;
            let kind = PlanKind::from_name(plan_name)
                .ok_or_else(|| fail(&format!("unknown plan kind `{plan_name}`")))?;
            let key = GemmConfig {
                m: dim("m")?,
                n: dim("n")?,
                k: dim("k")?,
                lda: dim("lda")?,
                ldb: dim("ldb")?,
                ldc: dim("ldc")?,
                b_layout,
                beta,
                c_transfer: ZaTransferStrategy::TwoStep,
                k_unroll: 1,
            };
            key.validate()
                .map_err(|e| fail(&format!("invalid stored configuration: {e}")))?;
            // Validate the candidate too: a malformed record would otherwise
            // surface much later, as a compile error on every request for
            // this shape.
            let k_unroll = dim("k_unroll")?;
            if !matches!(k_unroll, 1 | 2 | 4) {
                return Err(fail(&format!(
                    "invalid stored k_unroll {k_unroll} (supported: 1, 2, 4)"
                )));
            }
            if b_layout == BLayout::ColMajor && kind != PlanKind::ColumnPanels {
                return Err(fail(&format!(
                    "plan kind `{plan_name}` is incompatible with column-major B \
                     (only ColumnPanels is)"
                )));
            }
            let record = TunedRecord {
                candidate: PlanCandidate {
                    kind,
                    c_transfer,
                    k_unroll,
                },
                tuned_cycles: cycles("tuned_cycles")?,
                default_cycles: cycles("default_cycles")?,
            };
            store.entries.insert(key, record);
        }
        Ok(store)
    }

    /// Write the JSON document to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PlanStoreError> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Load a store previously written with [`PlanStore::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PlanStoreError> {
        let text = std::fs::read_to_string(path)?;
        PlanStore::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sme_gemm::RegisterBlocking;

    fn sample_record(kind: PlanKind) -> TunedRecord {
        TunedRecord {
            candidate: PlanCandidate {
                kind,
                c_transfer: ZaTransferStrategy::Direct,
                k_unroll: 2,
            },
            tuned_cycles: 1200.5,
            default_cycles: 1500.25,
        }
    }

    #[test]
    fn lookup_is_knob_insensitive() {
        let mut store = PlanStore::new();
        let cfg = GemmConfig::abt(64, 48, 32);
        store.insert(&cfg, sample_record(PlanKind::Heterogeneous));
        // A request differing only in the tunable knobs hits the same record.
        let variant = cfg
            .with_c_transfer(ZaTransferStrategy::Direct)
            .with_k_unroll(4);
        assert!(store.lookup(&variant).is_some());
        // A different shape does not.
        assert!(store.lookup(&GemmConfig::abt(64, 48, 33)).is_none());
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let mut store = PlanStore::new();
        store.insert(
            &GemmConfig::abt(80, 80, 512),
            sample_record(PlanKind::Homogeneous(RegisterBlocking::B16x64)),
        );
        store.insert(
            &GemmConfig::ab(33, 47, 64).with_leading_dims(40, 64, 40),
            sample_record(PlanKind::ColumnPanels),
        );
        let json = store.to_json();
        let parsed = PlanStore::from_json(&json).unwrap();
        assert_eq!(parsed, store);
        assert_eq!(parsed.len(), 2);
        let rec = parsed.lookup(&GemmConfig::abt(80, 80, 512)).unwrap();
        assert_eq!(
            rec.candidate.kind,
            PlanKind::Homogeneous(RegisterBlocking::B16x64)
        );
        assert_eq!(rec.candidate.k_unroll, 2);
        assert_eq!(rec.tuned_cycles, 1200.5);
        assert!((rec.speedup() - 1500.25 / 1200.5).abs() < 1e-12);
    }

    #[test]
    fn serialized_output_is_deterministic_and_versioned() {
        let mut store = PlanStore::new();
        for mn in [96, 32, 64] {
            store.insert(
                &GemmConfig::abt(mn, mn, 16),
                sample_record(PlanKind::Heterogeneous),
            );
        }
        let a = store.to_json();
        let b = store.clone().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"version\": 1"));
        // Sorted by shape: 32 before 64 before 96.
        let p32 = a.find("\"m\": 32").unwrap();
        let p64 = a.find("\"m\": 64").unwrap();
        let p96 = a.find("\"m\": 96").unwrap();
        assert!(p32 < p64 && p64 < p96);
    }

    #[test]
    fn malformed_documents_are_rejected_with_context() {
        let cases = [
            ("not json", "invalid JSON"),
            ("{}", "version"),
            (r#"{"version": 2, "entries": []}"#, "version 2"),
            (r#"{"version": 1}"#, "entries"),
            (r#"{"version": 1, "entries": [{}]}"#, "missing"),
            (
                r#"{"version": 1, "entries": [{"m": 8, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "Diagonal", "beta": "One", "plan": "Heterogeneous",
                   "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "b_layout",
            ),
            (
                r#"{"version": 1, "entries": [{"m": 8, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "RowMajor", "beta": "One", "plan": "NoSuchPlan",
                   "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "plan kind",
            ),
            (
                r#"{"version": 1, "entries": [{"m": 0, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "RowMajor", "beta": "One", "plan": "Heterogeneous",
                   "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "invalid stored configuration",
            ),
            (
                r#"{"version": 1, "entries": [{"m": 8, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "RowMajor", "beta": "One", "plan": "Heterogeneous",
                   "c_transfer": "TwoStep", "k_unroll": 3,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "k_unroll 3",
            ),
            (
                r#"{"version": 1, "entries": [{"m": 8, "n": 8, "k": 8, "lda": 8, "ldb": 8,
                   "ldc": 8, "b_layout": "ColMajor", "beta": "One", "plan": "Heterogeneous",
                   "c_transfer": "TwoStep", "k_unroll": 1,
                   "tuned_cycles": 1, "default_cycles": 1}]}"#,
                "incompatible with column-major",
            ),
        ];
        for (text, needle) in cases {
            match PlanStore::from_json(text) {
                Err(PlanStoreError::Format(msg)) => {
                    assert!(msg.contains(needle), "{needle:?} not in {msg:?}")
                }
                other => panic!("expected Format error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let mut store = PlanStore::new();
        store.insert(
            &GemmConfig::abt(48, 48, 48),
            sample_record(PlanKind::Heterogeneous),
        );
        let path = std::env::temp_dir().join("sme_runtime_plan_store_test.json");
        store.save(&path).unwrap();
        let loaded = PlanStore::load(&path).unwrap();
        assert_eq!(loaded, store);
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            PlanStore::load("/nonexistent/plan/store.json"),
            Err(PlanStoreError::Io(_))
        ));
    }
}
